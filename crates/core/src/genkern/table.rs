//! Plan-time kernel specialization: a generated dispatch table of
//! monomorphized kernel shapes, selected per `(pattern, d, backend,
//! degree-class)` when a plan is built.
//!
//! The strip-mined kernels in [`super::strip`] consume the feature
//! dimension with one fixed panel cascade (12/8/6/4/2/1 panels per
//! pass, plus a 24-panel lead on AVX-512) and one fixed message-chunk
//! depth ([`H_CHUNK`]). That single shape is a good average but not
//! the best shape *per dimension*: d = 96 on AVX-512 prefers a 6-panel
//! zmm sweep over the generic cascade's first matching pass, odd
//! dimensions are excluded from the strip family entirely, and the
//! best SDDMM chunk depth shifts with how much of `y` one chunk drags
//! through L1. This module is the finer grid: every kernel body is
//! instantiated over a small set of const-generic shapes —
//!
//! * `MAIN` — panels per main-pass iteration, in units of the
//!   backend's lane width (`SimdIsa::LANES`): [`MAIN_GRID`] =
//!   {4, 6, 8, 12, 24};
//! * `HC` — SDDMM message-buffer depth: [`HC_GRID`] = {16, 32, 64};
//!
//! — and a [`KernelSpec`] names one point of that grid. At plan build
//! the autotuner probes the candidate shapes for the plan's
//! `(pattern, d, backend)` (see [`candidate_specs`]) and the winning
//! spec is stored in the plan, so steady-state dispatch is one
//! fn-pointer call. This is the same "generate every shape, then
//! select one" structure the paper's `extract` tool applies per
//! dimension — moved from code-generation time to plan time.
//!
//! Unlike the strip family, the spec kernels accept **any** `d ≥ 1`:
//! the cascade ends in one mask-predicated panel
//! (`SimdIsa::loadu_partial` / `SimdIsa::storeu_partial`) that
//! covers the final sub-register remainder fused, so odd dimensions
//! get register-blocked panels too instead of falling back to the
//! unfused dyn path.
//!
//! Shape choices never change results: for every output element the
//! fold over neighbors runs in row-storage order regardless of how
//! `MAIN` tiles the dimension or `HC` chunks the neighbor list, so all
//! specs of one backend are bit-identical to each other and to the
//! strip kernels (where those apply) — and the AVX-512 and AVX2
//! backends stay bit-identical to *each other* down the masked tails
//! (see [`crate::simd`]).

use fusedmm_sparse::dense::Dense;

#[cfg(target_arch = "aarch64")]
use crate::simd::NeonIsa;
#[cfg(target_arch = "x86_64")]
use crate::simd::{Avx2Isa, Avx512Isa};
use crate::simd::{Backend, ScalarIsa, SimdIsa, VLEN};

use super::strip::H_CHUNK;
use super::{
    EmbedBatchKernel, EmbedRowKernel, FrBatchKernel, FrRowKernel, GatheredRow, SigmoidKind,
    SpanSweepKernel, SpmmBatchKernel, SpmmRowKernel, TDistBatchKernel, TDistRowKernel,
};

/// Main-pass panel counts the table instantiates (units of the
/// backend's lane width). 24 only pays on 16-lane ISAs (32 zmm
/// registers); on 8-lane backends it would spill, so
/// [`candidate_specs`] filters it out there.
pub const MAIN_GRID: &[u8] = &[4, 6, 8, 12, 24];

/// SDDMM message-buffer depths the table instantiates. Patterns with
/// no reduction (SpMM) ignore the depth; their specs pin it to 32.
pub const HC_GRID: &[u16] = &[16, 32, 64];

/// One point of the specialization grid: the shape of a monomorphized
/// kernel. Only grid points can be constructed ([`KernelSpec::new`]),
/// so a spec always maps to a compiled instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelSpec {
    main_panels: u8,
    h_chunk: u16,
}

impl KernelSpec {
    /// The shape used when nothing better is known: a 4-panel main
    /// pass and the strip family's chunk depth.
    pub const FALLBACK: KernelSpec = KernelSpec { main_panels: 4, h_chunk: 32 };

    /// Build a spec from a grid point; `None` when either coordinate
    /// is off the generated grid.
    pub fn new(main_panels: u8, h_chunk: u16) -> Option<KernelSpec> {
        if MAIN_GRID.contains(&main_panels) && HC_GRID.contains(&h_chunk) {
            Some(KernelSpec { main_panels, h_chunk })
        } else {
            None
        }
    }

    /// Panels per main-pass iteration, in units of the backend's lane
    /// count.
    pub fn main_panels(&self) -> usize {
        self.main_panels as usize
    }

    /// SDDMM message-buffer depth (neighbors per chunk).
    pub fn h_chunk(&self) -> usize {
        self.h_chunk as usize
    }

    /// Static profiling label for this shape, e.g. `"spec-m12-h32"` —
    /// the blocking label recorded per kernel launch by
    /// [`crate::profile`].
    pub fn label(&self) -> &'static str {
        match (self.main_panels, self.h_chunk) {
            (4, 16) => "spec-m4-h16",
            (4, 32) => "spec-m4-h32",
            (4, 64) => "spec-m4-h64",
            (6, 16) => "spec-m6-h16",
            (6, 32) => "spec-m6-h32",
            (6, 64) => "spec-m6-h64",
            (8, 16) => "spec-m8-h16",
            (8, 32) => "spec-m8-h32",
            (8, 64) => "spec-m8-h64",
            (12, 16) => "spec-m12-h16",
            (12, 32) => "spec-m12-h32",
            (12, 64) => "spec-m12-h64",
            (24, 16) => "spec-m24-h16",
            (24, 32) => "spec-m24-h32",
            (24, 64) => "spec-m24-h64",
            _ => unreachable!("KernelSpec outside the generated shape grid"),
        }
    }
}

/// The shapes worth probing for a `(d, backend)` pair: main-pass sizes
/// that fit the dimension at the backend's lane width (24 panels only
/// where 32 vector registers exist), crossed with the chunk depths —
/// all of [`HC_GRID`] for SDDMM patterns, pinned to 32 where there is
/// no reduction. Never empty: a dimension too narrow for any main pass
/// still runs its 4/2/1/masked-tail passes under the fallback shape.
pub fn candidate_specs(lanes: usize, d: usize, sddmm: bool) -> Vec<KernelSpec> {
    let mut mains: Vec<u8> = MAIN_GRID
        .iter()
        .copied()
        .filter(|&m| m as usize * lanes <= d && (m <= 12 || lanes >= 16))
        .collect();
    if mains.is_empty() {
        mains.push(KernelSpec::FALLBACK.main_panels);
    }
    let hcs: &[u16] = if sddmm { HC_GRID } else { &[32] };
    let mut out = Vec::with_capacity(mains.len() * hcs.len());
    for &m in &mains {
        for &h in hcs {
            out.push(KernelSpec { main_panels: m, h_chunk: h });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// ISA-generic shaped bodies
// ---------------------------------------------------------------------------

/// The shaped panel cascade: `MAIN` panels per main-pass iteration,
/// then 4/2/1-panel cleanup passes, then one mask-predicated panel for
/// the sub-register remainder. Accepts any `d ≥ 1` — the masked tail
/// is what admits odd dimensions. Per output element the fold order
/// over `cols` is identical for every `MAIN`, and identical to
/// [`super::strip`]'s cascade: shape is a pure performance choice.
#[inline(always)]
fn panel_spec<I: SimdIsa, const MAIN: usize, const LOAD_Z: bool>(
    cols: &[usize],
    h: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    let d = zu.len();
    assert_eq!(y.ncols(), d, "spec kernel: y width {} != output width {d}", y.ncols());
    assert!(h.len() >= cols.len(), "spec kernel: fewer messages than neighbors");
    if let Some(&vmax) = cols.iter().max() {
        assert!(vmax < y.nrows(), "spec kernel: column {vmax} out of range");
    }
    let yp = y.as_slice().as_ptr();
    let zp = zu.as_mut_ptr();
    let mut p = 0;
    // Safety: every pointer offset below is `v * d + p + lanes` with
    // `v < y.nrows()` (checked above) and `p + lanes <= d` (the masked
    // tail reads/writes only `d - p` lanes), hence in bounds of `y`'s
    // backing slice; z offsets stay below `zu.len()`; `h[i]` is a
    // checked index.
    unsafe {
        macro_rules! spec_pass {
            ($panels:expr) => {
                while p + $panels * I::LANES <= d {
                    let mut acc = [I::zero(); $panels];
                    if LOAD_Z {
                        for (q, a) in acc.iter_mut().enumerate() {
                            *a = I::loadu(zp.add(p + q * I::LANES));
                        }
                    }
                    for (i, &v) in cols.iter().enumerate() {
                        let hv = I::splat(h[i]);
                        let base = yp.add(v * d + p);
                        for (q, a) in acc.iter_mut().enumerate() {
                            *a = I::fma(*a, hv, I::loadu(base.add(q * I::LANES)));
                        }
                    }
                    for (q, a) in acc.iter().enumerate() {
                        I::storeu(zp.add(p + q * I::LANES), *a);
                    }
                    p += $panels * I::LANES;
                }
            };
        }
        spec_pass!(MAIN);
        if MAIN > 4 {
            spec_pass!(4);
        }
        spec_pass!(2);
        spec_pass!(1);
        if p < d {
            let r = d - p;
            let mut acc = if LOAD_Z { I::loadu_partial(zp.add(p), r) } else { I::zero() };
            for (i, &v) in cols.iter().enumerate() {
                let hv = I::splat(h[i]);
                acc = I::fma(acc, hv, I::loadu_partial(yp.add(v * d + p), r));
            }
            I::storeu_partial(zp.add(p), acc, r);
        }
    }
}

/// Every gathered row must fit the batch kernels' shared message
/// buffer on its own (the bodies fill and fold one row at a time) —
/// same contract as the strip batch kernels.
#[inline(always)]
fn assert_spec_batch_fits(rows: &[GatheredRow<'_>]) {
    for r in rows {
        assert!(
            r.cols.len() <= H_CHUNK,
            "gathered row stages {} neighbors, message buffer holds {H_CHUNK}",
            r.cols.len()
        );
    }
}

#[inline(always)]
fn band_row_slice(band: &mut [f32], band_row: usize, d: usize) -> &mut [f32] {
    &mut band[band_row * d..(band_row + 1) * d]
}

// --- shaped row kernels (uniform path) -------------------------------------

#[inline(always)]
fn embed_spec_row_body<I: SimdIsa, const MAIN: usize, const HC: usize>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    sk: &SigmoidKind,
) {
    let mut h = [0f32; HC];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + HC).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = sk.eval(I::dot(xu, y.row(v)));
        }
        panel_spec::<I, MAIN, true>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn fr_spec_row_body<I: SimdIsa, const MAIN: usize, const HC: usize>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    alpha: f32,
) {
    let mut h = [0f32; HC];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + HC).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = alpha * I::sqdist(xu, y.row(v)).sqrt();
        }
        panel_spec::<I, MAIN, true>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn tdist_spec_row_body<I: SimdIsa, const MAIN: usize, const HC: usize>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    let mut h = [0f32; HC];
    let mut start = 0;
    while start < cols.len() {
        let chunk = &cols[start..(start + HC).min(cols.len())];
        for (i, &v) in chunk.iter().enumerate() {
            h[i] = 1.0 / (1.0 + I::sqdist(xu, y.row(v)));
        }
        panel_spec::<I, MAIN, true>(chunk, &h, y, zu);
        start += chunk.len();
    }
}

#[inline(always)]
fn spmm_spec_row_body<I: SimdIsa, const MAIN: usize>(
    cols: &[usize],
    vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    // No SDDMM reduction: edge weights are the messages, one sweep.
    panel_spec::<I, MAIN, true>(cols, vals, y, zu);
}

// --- shaped batch kernels (hybrid short class) -----------------------------
//
// Shaped only in MAIN: the batch path's message buffer stays at the
// fixed H_CHUNK depth because the hybrid gatherer sizes its staging
// batches against that constant (its gather-flush contract).

#[inline(always)]
fn embed_spec_batch_body<I: SimdIsa, const MAIN: usize>(
    rows: &[GatheredRow<'_>],
    y: &Dense,
    band: &mut [f32],
    sk: &SigmoidKind,
) {
    let d = y.ncols();
    assert_spec_batch_fits(rows);
    let mut h = [0f32; H_CHUNK];
    for row in rows {
        for (i, &v) in row.cols.iter().enumerate() {
            h[i] = sk.eval(I::dot(row.xu, y.row(v)));
        }
        panel_spec::<I, MAIN, false>(
            row.cols,
            &h[..row.cols.len()],
            y,
            band_row_slice(band, row.band_row, d),
        );
    }
}

#[inline(always)]
fn fr_spec_batch_body<I: SimdIsa, const MAIN: usize>(
    rows: &[GatheredRow<'_>],
    y: &Dense,
    band: &mut [f32],
    alpha: f32,
) {
    let d = y.ncols();
    assert_spec_batch_fits(rows);
    let mut h = [0f32; H_CHUNK];
    for row in rows {
        for (i, &v) in row.cols.iter().enumerate() {
            h[i] = alpha * I::sqdist(row.xu, y.row(v)).sqrt();
        }
        panel_spec::<I, MAIN, false>(
            row.cols,
            &h[..row.cols.len()],
            y,
            band_row_slice(band, row.band_row, d),
        );
    }
}

#[inline(always)]
fn tdist_spec_batch_body<I: SimdIsa, const MAIN: usize>(
    rows: &[GatheredRow<'_>],
    y: &Dense,
    band: &mut [f32],
) {
    let d = y.ncols();
    assert_spec_batch_fits(rows);
    let mut h = [0f32; H_CHUNK];
    for row in rows {
        for (i, &v) in row.cols.iter().enumerate() {
            h[i] = 1.0 / (1.0 + I::sqdist(row.xu, y.row(v)));
        }
        panel_spec::<I, MAIN, false>(
            row.cols,
            &h[..row.cols.len()],
            y,
            band_row_slice(band, row.band_row, d),
        );
    }
}

#[inline(always)]
fn spmm_spec_batch_body<I: SimdIsa, const MAIN: usize>(
    rows: &[GatheredRow<'_>],
    y: &Dense,
    band: &mut [f32],
) {
    let d = y.ncols();
    for row in rows {
        panel_spec::<I, MAIN, false>(row.cols, row.vals, y, band_row_slice(band, row.band_row, d));
    }
}

// --- shaped span sweep (hybrid mega class, phase B) ------------------------

/// Shaped variant of [`super::strip`]'s span sweep: folds all
/// neighbors, in row order, into one VLEN-aligned span of the output
/// row. The final span may end unaligned (it absorbs the sub-VLEN
/// remainder at odd `d`), finished by the masked-tail panel.
#[inline(always)]
fn span_spec_body<I: SimdIsa, const MAIN: usize>(
    cols: &[usize],
    h: &[f32],
    y: &Dense,
    z_span: &mut [f32],
    span_off: usize,
) {
    let w = z_span.len();
    let d = y.ncols();
    assert!(
        span_off.is_multiple_of(VLEN)
            && span_off + w <= d
            && (w.is_multiple_of(VLEN) || span_off + w == d),
        "span [{span_off}, {span_off}+{w}) not a VLEN-aligned slice of row width {d}"
    );
    assert!(h.len() >= cols.len(), "span kernel: fewer messages than neighbors");
    if let Some(&vmax) = cols.iter().max() {
        assert!(vmax < y.nrows(), "span kernel: column {vmax} out of range");
    }
    let yp = y.as_slice().as_ptr();
    let zp = z_span.as_mut_ptr();
    let mut p = 0;
    // Safety: as in `panel_spec`, with every offset shifted by
    // `span_off` and `span_off + w <= d` asserted above.
    unsafe {
        macro_rules! span_pass {
            ($panels:expr) => {
                while p + $panels * I::LANES <= w {
                    let mut acc = [I::zero(); $panels];
                    for (q, a) in acc.iter_mut().enumerate() {
                        *a = I::loadu(zp.add(p + q * I::LANES));
                    }
                    for (i, &v) in cols.iter().enumerate() {
                        let hv = I::splat(h[i]);
                        let base = yp.add(v * d + span_off + p);
                        for (q, a) in acc.iter_mut().enumerate() {
                            *a = I::fma(*a, hv, I::loadu(base.add(q * I::LANES)));
                        }
                    }
                    for (q, a) in acc.iter().enumerate() {
                        I::storeu(zp.add(p + q * I::LANES), *a);
                    }
                    p += $panels * I::LANES;
                }
            };
        }
        span_pass!(MAIN);
        if MAIN > 4 {
            span_pass!(4);
        }
        span_pass!(2);
        span_pass!(1);
        if p < w {
            let r = w - p;
            let mut acc = I::loadu_partial(zp.add(p), r);
            for (i, &v) in cols.iter().enumerate() {
                let hv = I::splat(h[i]);
                acc = I::fma(acc, hv, I::loadu_partial(yp.add(v * d + span_off + p), r));
            }
            I::storeu_partial(zp.add(p), acc, r);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-backend shaped entries
// ---------------------------------------------------------------------------
//
// One monomorphization per (ISA × shape), compiled under the matching
// #[target_feature] so the whole inlined body codegens with that ISA.
// The selectors below turbofish a grid point into a plain fn pointer,
// so plans store and call exactly one compiled shape.

macro_rules! spec_entries {
    ($body:ident => $scalar:ident, $avx2:ident, $avx512:ident, $neon:ident;
     [$($cp:ident),+]; ($($a:ident: $t:ty),*)) => {
        fn $scalar<$(const $cp: usize),+>($($a: $t),*) {
            $body::<ScalarIsa, $($cp),+>($($a),*)
        }

        #[cfg(target_arch = "x86_64")]
        fn $avx2<$(const $cp: usize),+>($($a: $t),*) {
            #[target_feature(enable = "avx2,fma")]
            unsafe fn inner<$(const $cp: usize),+>($($a: $t),*) {
                $body::<Avx2Isa, $($cp),+>($($a),*)
            }
            // Safety: the selectors only hand this entry out after
            // Backend::Avx2Fma::is_available() returned true.
            unsafe { inner::<$($cp),+>($($a),*) }
        }

        #[cfg(target_arch = "x86_64")]
        fn $avx512<$(const $cp: usize),+>($($a: $t),*) {
            #[target_feature(enable = "avx512f,avx2,fma")]
            unsafe fn inner<$(const $cp: usize),+>($($a: $t),*) {
                $body::<Avx512Isa, $($cp),+>($($a),*)
            }
            // Safety: the selectors only hand this entry out after
            // Backend::Avx512::is_available() returned true.
            unsafe { inner::<$($cp),+>($($a),*) }
        }

        #[cfg(target_arch = "aarch64")]
        fn $neon<$(const $cp: usize),+>($($a: $t),*) {
            #[target_feature(enable = "neon")]
            unsafe fn inner<$(const $cp: usize),+>($($a: $t),*) {
                $body::<NeonIsa, $($cp),+>($($a),*)
            }
            // Safety: the selectors only hand this entry out after
            // Backend::Neon::is_available() returned true.
            unsafe { inner::<$($cp),+>($($a),*) }
        }
    };
}

spec_entries!(embed_spec_row_body => embed_spec_scalar, embed_spec_avx2, embed_spec_avx512, embed_spec_neon;
    [MAIN, HC]; (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], sk: &SigmoidKind));
spec_entries!(fr_spec_row_body => fr_spec_scalar, fr_spec_avx2, fr_spec_avx512, fr_spec_neon;
    [MAIN, HC]; (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], alpha: f32));
spec_entries!(tdist_spec_row_body => tdist_spec_scalar, tdist_spec_avx2, tdist_spec_avx512, tdist_spec_neon;
    [MAIN, HC]; (xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));
spec_entries!(spmm_spec_row_body => spmm_spec_scalar, spmm_spec_avx2, spmm_spec_avx512, spmm_spec_neon;
    [MAIN]; (cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]));

spec_entries!(embed_spec_batch_body => embed_spec_batch_scalar, embed_spec_batch_avx2, embed_spec_batch_avx512, embed_spec_batch_neon;
    [MAIN]; (rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32], sk: &SigmoidKind));
spec_entries!(fr_spec_batch_body => fr_spec_batch_scalar, fr_spec_batch_avx2, fr_spec_batch_avx512, fr_spec_batch_neon;
    [MAIN]; (rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32], alpha: f32));
spec_entries!(tdist_spec_batch_body => tdist_spec_batch_scalar, tdist_spec_batch_avx2, tdist_spec_batch_avx512, tdist_spec_batch_neon;
    [MAIN]; (rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32]));
spec_entries!(spmm_spec_batch_body => spmm_spec_batch_scalar, spmm_spec_batch_avx2, spmm_spec_batch_avx512, spmm_spec_batch_neon;
    [MAIN]; (rows: &[GatheredRow<'_>], y: &Dense, band: &mut [f32]));

spec_entries!(span_spec_body => span_spec_scalar, span_spec_avx2, span_spec_avx512, span_spec_neon;
    [MAIN]; (cols: &[usize], h: &[f32], y: &Dense, z_span: &mut [f32], span_off: usize));

// ---------------------------------------------------------------------------
// Selectors: (backend, spec) -> compiled shape
// ---------------------------------------------------------------------------

/// Turbofish a `(MAIN, HC)` grid point into the matching compiled
/// instantiation of `$entry`.
macro_rules! shape_mh {
    ($spec:expr, $entry:ident) => {{
        let s: KernelSpec = $spec;
        match (s.main_panels, s.h_chunk) {
            (4, 16) => $entry::<4, 16>,
            (4, 32) => $entry::<4, 32>,
            (4, 64) => $entry::<4, 64>,
            (6, 16) => $entry::<6, 16>,
            (6, 32) => $entry::<6, 32>,
            (6, 64) => $entry::<6, 64>,
            (8, 16) => $entry::<8, 16>,
            (8, 32) => $entry::<8, 32>,
            (8, 64) => $entry::<8, 64>,
            (12, 16) => $entry::<12, 16>,
            (12, 32) => $entry::<12, 32>,
            (12, 64) => $entry::<12, 64>,
            (24, 16) => $entry::<24, 16>,
            (24, 32) => $entry::<24, 32>,
            (24, 64) => $entry::<24, 64>,
            _ => unreachable!("KernelSpec outside the generated shape grid"),
        }
    }};
}

/// Turbofish a `MAIN`-only grid point (batch/span/SpMM shapes) into
/// the matching compiled instantiation of `$entry`.
macro_rules! shape_m {
    ($spec:expr, $entry:ident) => {{
        let s: KernelSpec = $spec;
        match s.main_panels {
            4 => $entry::<4>,
            6 => $entry::<6>,
            8 => $entry::<8>,
            12 => $entry::<12>,
            24 => $entry::<24>,
            _ => unreachable!("KernelSpec outside the generated shape grid"),
        }
    }};
}

macro_rules! select_spec {
    ($b:expr, $spec:expr, $shape:ident => $scalar:ident, $avx2:ident, $avx512:ident, $neon:ident) => {{
        let b = $b;
        assert!(b.is_available(), "backend {b} not available on this CPU");
        match b {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => $shape!($spec, $avx512),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2Fma => $shape!($spec, $avx2),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => $shape!($spec, $neon),
            _ => $shape!($spec, $scalar),
        }
    }};
}

/// The shaped embedding row kernel compiled for `(b, spec)`. Accepts
/// any `d ≥ 1` — odd dimensions end in the fused masked-tail panel.
///
/// # Panics
/// Panics when `b` is not available on this CPU.
pub fn embed_spec_kernel(b: Backend, spec: KernelSpec) -> EmbedRowKernel {
    select_spec!(b, spec, shape_mh => embed_spec_scalar, embed_spec_avx2, embed_spec_avx512, embed_spec_neon)
}

/// The shaped FR row kernel compiled for `(b, spec)` (see
/// [`embed_spec_kernel`] for the contract).
pub fn fr_spec_kernel(b: Backend, spec: KernelSpec) -> FrRowKernel {
    select_spec!(b, spec, shape_mh => fr_spec_scalar, fr_spec_avx2, fr_spec_avx512, fr_spec_neon)
}

/// The shaped t-distribution row kernel compiled for `(b, spec)` (see
/// [`embed_spec_kernel`] for the contract).
pub fn tdist_spec_kernel(b: Backend, spec: KernelSpec) -> TDistRowKernel {
    select_spec!(b, spec, shape_mh => tdist_spec_scalar, tdist_spec_avx2, tdist_spec_avx512, tdist_spec_neon)
}

/// The shaped SpMM row kernel compiled for `(b, spec)`; only the
/// main-pass shape applies (no SDDMM reduction, no message buffer).
pub fn spmm_spec_kernel(b: Backend, spec: KernelSpec) -> SpmmRowKernel {
    select_spec!(b, spec, shape_m => spmm_spec_scalar, spmm_spec_avx2, spmm_spec_avx512, spmm_spec_neon)
}

/// The shaped short-row embedding batch kernel compiled for
/// `(b, spec)` — the hybrid short class at specialized plans. Message
/// depth stays at [`H_CHUNK`] (the gatherer's staging contract); only
/// the main-pass shape is specialized.
///
/// # Panics
/// Panics when `b` is not available on this CPU. The returned kernel
/// panics when a gathered row stages more than [`H_CHUNK`] neighbors.
pub fn embed_spec_batch_kernel(b: Backend, spec: KernelSpec) -> EmbedBatchKernel {
    select_spec!(b, spec, shape_m => embed_spec_batch_scalar, embed_spec_batch_avx2, embed_spec_batch_avx512, embed_spec_batch_neon)
}

/// The shaped short-row FR batch kernel compiled for `(b, spec)` (see
/// [`embed_spec_batch_kernel`] for the contract).
pub fn fr_spec_batch_kernel(b: Backend, spec: KernelSpec) -> FrBatchKernel {
    select_spec!(b, spec, shape_m => fr_spec_batch_scalar, fr_spec_batch_avx2, fr_spec_batch_avx512, fr_spec_batch_neon)
}

/// The shaped short-row t-distribution batch kernel compiled for
/// `(b, spec)` (see [`embed_spec_batch_kernel`] for the contract).
pub fn tdist_spec_batch_kernel(b: Backend, spec: KernelSpec) -> TDistBatchKernel {
    select_spec!(b, spec, shape_m => tdist_spec_batch_scalar, tdist_spec_batch_avx2, tdist_spec_batch_avx512, tdist_spec_batch_neon)
}

/// The shaped short-row SpMM batch kernel compiled for `(b, spec)`.
pub fn spmm_spec_batch_kernel(b: Backend, spec: KernelSpec) -> SpmmBatchKernel {
    select_spec!(b, spec, shape_m => spmm_spec_batch_scalar, spmm_spec_batch_avx2, spmm_spec_batch_avx512, spmm_spec_batch_neon)
}

/// The shaped mega-row column-span sweep compiled for `(b, spec)` —
/// hybrid phase B at specialized plans. Unlike the strip span sweep,
/// the final span may end unaligned at odd `d`.
pub fn span_spec_kernel(b: Backend, spec: KernelSpec) -> SpanSweepKernel {
    select_spec!(b, spec, shape_m => span_spec_scalar, span_spec_avx2, span_spec_avx512, span_spec_neon)
}

#[cfg(test)]
mod tests {
    use super::super::{
        embed_dyn_kernel, embed_strip_kernel, spmm_dyn_kernel, spmm_strip_kernel, tdist_dyn_kernel,
        tdist_strip_kernel,
    };
    use super::*;
    use crate::simd::active_backend;
    use fusedmm_sparse::coo::{Coo, Dedup};
    use fusedmm_sparse::csr::Csr;

    fn chain(n: usize, deg: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            for k in 1..=deg {
                c.push(u, (u + k * 3) % n, 0.25 + k as f32 * 0.5);
            }
        }
        c.to_csr(Dedup::Last)
    }

    fn feats(n: usize, d: usize, seed: f32) -> Dense {
        Dense::from_fn(n, d, |r, c| ((r * 31 + c * 7) as f32 * 0.01 + seed).sin() * 0.3)
    }

    #[test]
    fn grid_membership_is_enforced() {
        assert!(KernelSpec::new(12, 32).is_some());
        assert!(KernelSpec::new(24, 16).is_some());
        assert!(KernelSpec::new(5, 32).is_none());
        assert!(KernelSpec::new(12, 48).is_none());
        assert_eq!(KernelSpec::FALLBACK.label(), "spec-m4-h32");
    }

    #[test]
    fn labels_are_unique_per_grid_point() {
        let mut seen = std::collections::HashSet::new();
        for &m in MAIN_GRID {
            for &h in HC_GRID {
                assert!(seen.insert(KernelSpec::new(m, h).unwrap().label()));
            }
        }
        assert_eq!(seen.len(), MAIN_GRID.len() * HC_GRID.len());
    }

    #[test]
    fn candidates_respect_lane_width_and_dim() {
        // 8-lane backend at d=96: 24-panel (192-lane) shapes excluded.
        let c8 = candidate_specs(8, 96, true);
        assert!(c8.iter().all(|s| s.main_panels() * 8 <= 96 && s.main_panels() <= 12));
        assert!(c8.iter().any(|s| s.main_panels() == 12));
        // 16-lane backend at d=384: the 24-panel sweep is in.
        let c16 = candidate_specs(16, 384, true);
        assert!(c16.iter().any(|s| s.main_panels() == 24));
        // Narrow dims still yield the fallback shape.
        let c7 = candidate_specs(16, 7, true);
        assert!(!c7.is_empty());
        assert!(c7.iter().all(|s| s.main_panels() == 4));
        // No reduction -> chunk depth pinned.
        let spmm = candidate_specs(8, 96, false);
        assert!(spmm.iter().all(|s| s.h_chunk() == 32));
    }

    #[test]
    fn spec_bit_identical_to_strip_at_strip_dims() {
        // Shape is a pure performance choice: every candidate spec must
        // reproduce the strip kernel bit for bit on strip-minable dims.
        let n = 80;
        let a = chain(n, 70);
        for d in [8usize, 48, 96, 192] {
            let x = feats(n, d, 0.2);
            let y = feats(n, d, 0.8);
            let (cols, vals) = a.row(3);
            for &b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                let mut z_strip = vec![0f32; d];
                embed_strip_kernel(b)(x.row(3), cols, vals, &y, &mut z_strip, &SigmoidKind::Exact);
                for spec in candidate_specs(b.lanes(), d, true) {
                    let mut z = vec![0f32; d];
                    embed_spec_kernel(b, spec)(
                        x.row(3),
                        cols,
                        vals,
                        &y,
                        &mut z,
                        &SigmoidKind::Exact,
                    );
                    assert_eq!(z, z_strip, "embed {b} d={d} {}", spec.label());
                }
                let mut z_strip = vec![0f32; d];
                spmm_strip_kernel(b)(cols, vals, &y, &mut z_strip);
                for spec in candidate_specs(b.lanes(), d, false) {
                    let mut z = vec![0f32; d];
                    spmm_spec_kernel(b, spec)(cols, vals, &y, &mut z);
                    assert_eq!(z, z_strip, "spmm {b} d={d} {}", spec.label());
                }
                let mut z_strip = vec![0f32; d];
                tdist_strip_kernel(b)(x.row(3), cols, vals, &y, &mut z_strip);
                for spec in candidate_specs(b.lanes(), d, true) {
                    let mut z = vec![0f32; d];
                    tdist_spec_kernel(b, spec)(x.row(3), cols, vals, &y, &mut z);
                    assert_eq!(z, z_strip, "tdist {b} d={d} {}", spec.label());
                }
            }
        }
    }

    #[test]
    fn spec_covers_odd_dims_the_strip_family_rejects() {
        // d = 7 and 100 are not strip-minable; the spec kernels must
        // agree with the dyn reference within tolerance (the dyn path's
        // scalar tail is unfused, the spec masked tail is fused).
        let n = 40;
        let a = chain(n, 30);
        for d in [1usize, 7, 20, 100] {
            let x = feats(n, d, 0.4);
            let y = feats(n, d, 0.6);
            let (cols, vals) = a.row(5);
            for &b in Backend::ALL {
                if !b.is_available() {
                    continue;
                }
                let mut z_dyn = vec![0f32; d];
                embed_dyn_kernel(b)(x.row(5), cols, vals, &y, &mut z_dyn, &SigmoidKind::Exact);
                for spec in candidate_specs(b.lanes(), d, true) {
                    let mut z = vec![0f32; d];
                    embed_spec_kernel(b, spec)(
                        x.row(5),
                        cols,
                        vals,
                        &y,
                        &mut z,
                        &SigmoidKind::Exact,
                    );
                    for k in 0..d {
                        assert!(
                            (z[k] - z_dyn[k]).abs() < 1e-5,
                            "embed {b} d={d} {} k={k}: {} vs {}",
                            spec.label(),
                            z[k],
                            z_dyn[k]
                        );
                    }
                }
                let mut z_dyn = vec![0f32; d];
                tdist_dyn_kernel(b)(x.row(5), cols, vals, &y, &mut z_dyn);
                for spec in candidate_specs(b.lanes(), d, true) {
                    let mut z = vec![0f32; d];
                    tdist_spec_kernel(b, spec)(x.row(5), cols, vals, &y, &mut z);
                    for k in 0..d {
                        assert!((z[k] - z_dyn[k]).abs() < 1e-5, "tdist {b} d={d} k={k}");
                    }
                }
                let mut z_dyn = vec![0f32; d];
                spmm_dyn_kernel(b)(cols, vals, &y, &mut z_dyn);
                for spec in candidate_specs(b.lanes(), d, false) {
                    let mut z = vec![0f32; d];
                    spmm_spec_kernel(b, spec)(cols, vals, &y, &mut z);
                    for k in 0..d {
                        assert!((z[k] - z_dyn[k]).abs() < 1e-5, "spmm {b} d={d} k={k}");
                    }
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_spec_bit_identical_to_avx2_spec_at_odd_dims() {
        // The cross-backend guarantee extends beyond strip dims: both
        // x86 backends run fused masked tails with the same per-element
        // fold, so they agree exactly even where the fold is masked.
        if !(Backend::Avx512.is_available() && Backend::Avx2Fma.is_available()) {
            return;
        }
        let n = 40;
        let a = chain(n, 30);
        for d in [7usize, 20, 100, 385] {
            let x = feats(n, d, 0.4);
            let y = feats(n, d, 0.6);
            let (cols, vals) = a.row(5);
            let spec = KernelSpec::FALLBACK;
            let mut z2 = vec![0f32; d];
            let mut z5 = vec![0f32; d];
            embed_spec_kernel(Backend::Avx2Fma, spec)(
                x.row(5),
                cols,
                vals,
                &y,
                &mut z2,
                &SigmoidKind::Exact,
            );
            embed_spec_kernel(Backend::Avx512, spec)(
                x.row(5),
                cols,
                vals,
                &y,
                &mut z5,
                &SigmoidKind::Exact,
            );
            for k in 0..d {
                assert_eq!(z2[k].to_bits(), z5[k].to_bits(), "embed d={d} k={k}");
            }
        }
    }

    #[test]
    fn spec_batch_bit_identical_to_spec_row() {
        let n = 24;
        let a = chain(n, 5);
        for d in [48usize, 100] {
            let x = feats(n, d, 0.2);
            let y = feats(n, d, 0.8);
            let b = active_backend();
            for spec in candidate_specs(b.lanes(), d, true) {
                let rows_in_batch = [2usize, 5, 9, 11];
                let mut band = vec![0f32; rows_in_batch.len() * d];
                let batch: Vec<GatheredRow<'_>> = rows_in_batch
                    .iter()
                    .enumerate()
                    .map(|(i, &u)| GatheredRow {
                        xu: x.row(u),
                        cols: a.row(u).0,
                        vals: a.row(u).1,
                        band_row: i,
                    })
                    .collect();
                embed_spec_batch_kernel(b, spec)(&batch, &y, &mut band, &SigmoidKind::Exact);
                for (i, &u) in rows_in_batch.iter().enumerate() {
                    let mut z_row = vec![0f32; d];
                    let (cols, vals) = a.row(u);
                    embed_spec_kernel(b, spec)(
                        x.row(u),
                        cols,
                        vals,
                        &y,
                        &mut z_row,
                        &SigmoidKind::Exact,
                    );
                    assert_eq!(
                        &band[i * d..(i + 1) * d],
                        &z_row[..],
                        "embed {b} d={d} {} row {u}",
                        spec.label()
                    );
                }
            }
        }
    }

    #[test]
    fn span_spec_with_ragged_final_span_matches_row_kernel() {
        // Odd d split into spans: the last span absorbs the sub-VLEN
        // remainder. Phases A+B must reproduce the spec row kernel.
        let n = 90;
        let a = chain(n, 80);
        let d = 100;
        let x = feats(n, d, 0.3);
        let y = feats(n, d, 0.7);
        let (cols, vals) = a.row(7);
        let b = active_backend();
        let spec = KernelSpec::FALLBACK;
        let mut z_row = vec![0f32; d];
        embed_spec_kernel(b, spec)(x.row(7), cols, vals, &y, &mut z_row, &SigmoidKind::Exact);
        let mut h = vec![0f32; cols.len()];
        super::super::embed_msg_kernel(b)(x.row(7), cols, &y, &SigmoidKind::Exact, &mut h);
        for spans in [vec![d], vec![48, 52], vec![96, 4]] {
            let mut z = vec![0f32; d];
            let mut off = 0;
            for w in spans {
                span_spec_kernel(b, spec)(cols, &h, &y, &mut z[off..off + w], off);
                off += w;
            }
            // Messages were filled by the same backend's dot, so the
            // fold per element matches the row kernel exactly.
            assert_eq!(z, z_row, "embed span d={d}");
        }
        let _ = vals;
    }
}
