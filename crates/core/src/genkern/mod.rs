//! Generated, pattern-specialized register-blocked kernels.
//!
//! §IV of the paper: when the five steps match a predefined pattern, the
//! library dispatches to a kernel where the steps are fused into
//! straight-line SIMD code with no intermediate stores — `x_u` is loaded
//! into registers once per row, `z_u` accumulates in registers across
//! the whole neighbor loop and is written to memory exactly once
//! (Fig. 5). The reference implementation generates such kernels per
//! (pattern × dimension × ISA) with the `extract` metalanguage tool;
//! here a macro instantiates a const-generic Rust kernel per (pattern ×
//! dimension), and the portable [`crate::simd`] layer supplies the ISA
//! abstraction.
//!
//! Four blocking levels exist per pattern:
//!
//! * `*_row_dyn` — dimension known only at run time; processes the row
//!   in 8-lane strips, `z_u` accumulates in memory (one load+store per
//!   strip per neighbor);
//! * [`strip`] — strip-mined kernels for any `d ≡ 0 (mod 8)`: the
//!   dimension is tiled into register-wide panels whose accumulators
//!   stay in registers across the neighbor loop, covering the
//!   serving-typical d = 48/96/192/384 the const list misses;
//! * [`table`] — **plan-time specialized** kernels: the strip passes
//!   instantiated over a const-generic grid of panel/chunk shapes
//!   ([`table::KernelSpec`]), covering *any* `d ≥ 1` via a fused
//!   masked-tail panel and letting the autotuner pick the best shape
//!   per `(pattern, d, backend)` when a plan is built;
//! * `*_row_const::<D>` — dimension fixed at compile time; `x_u` and
//!   `z_u` live in fixed-size stack arrays that LLVM promotes to
//!   registers, giving the paper's register-blocking (the win measured
//!   by the `register_blocking` ablation bench).
//!
//! The dyn, strip, and table families are additionally monomorphized
//! per SIMD [`Backend`](crate::simd::Backend) (AVX-512 / AVX2+FMA /
//! NEON / scalar); the const family relies on LLVM autovectorization
//! of the portable [`crate::simd`] layer.

pub mod strip;
pub mod table;

use std::sync::Arc;

use fusedmm_ops::{sigmoid, SigmoidLut};
use fusedmm_sparse::dense::Dense;

use crate::simd::{active_backend, F32x8, VLEN};

pub use strip::{
    embed_batch_kernel, embed_dyn_kernel, embed_msg_kernel, embed_strip_kernel, fr_batch_kernel,
    fr_dyn_kernel, fr_msg_kernel, fr_strip_kernel, span_sweep_kernel, spmm_batch_kernel,
    spmm_dyn_kernel, spmm_strip_kernel, strip_minable, tdist_batch_kernel, tdist_dyn_kernel,
    tdist_msg_kernel, tdist_strip_kernel,
};
pub use table::{
    candidate_specs, embed_spec_batch_kernel, embed_spec_kernel, fr_spec_batch_kernel,
    fr_spec_kernel, span_spec_kernel, spmm_spec_batch_kernel, spmm_spec_kernel,
    tdist_spec_batch_kernel, tdist_spec_kernel, KernelSpec,
};

/// Which sigmoid evaluation the embedding kernels use for SOP.
#[derive(Debug, Clone)]
pub enum SigmoidKind {
    /// Exact `1/(1+e^{-x})` — matches the generic kernel bit-for-bit.
    Exact,
    /// Table lookup (the optimized kernels' default, as in Force2Vec).
    Lut(Arc<SigmoidLut>),
}

impl SigmoidKind {
    #[inline(always)]
    fn eval(&self, s: f32) -> f32 {
        match self {
            SigmoidKind::Exact => sigmoid(s),
            SigmoidKind::Lut(lut) => lut.eval(s),
        }
    }
}

/// Row kernel signature for the sigmoid-embedding pattern.
pub type EmbedRowKernel = fn(&[f32], &[usize], &[f32], &Dense, &mut [f32], &SigmoidKind);
/// Row kernel signature for the FR-model pattern (`alpha` = SCAL).
pub type FrRowKernel = fn(&[f32], &[usize], &[f32], &Dense, &mut [f32], f32);
/// Row kernel signature for the GCN/SpMM pattern.
pub type SpmmRowKernel = fn(&[usize], &[f32], &Dense, &mut [f32]);
/// Row kernel signature for the t-distribution embedding pattern.
pub type TDistRowKernel = fn(&[f32], &[usize], &[f32], &Dense, &mut [f32]);

/// One short row gathered into a batch for the hybrid dispatcher's
/// short-row class: the row's `x` slice, its neighbor list, edge values,
/// and where in the output band the row's `z` slice lives.
#[derive(Debug, Clone, Copy)]
pub struct GatheredRow<'a> {
    /// Feature row `x_u` of the batched row.
    pub xu: &'a [f32],
    /// Neighbor column ids of the row.
    pub cols: &'a [usize],
    /// Edge values aligned with `cols`.
    pub vals: &'a [f32],
    /// Row index *within the output band* (`z` offset is `band_row * d`).
    pub band_row: usize,
}

/// Batched short-row kernel for the embedding pattern: several gathered
/// rows share one SIMD sweep over a common message buffer.
pub type EmbedBatchKernel = fn(&[GatheredRow<'_>], &Dense, &mut [f32], &SigmoidKind);
/// Batched short-row kernel for the FR pattern.
pub type FrBatchKernel = fn(&[GatheredRow<'_>], &Dense, &mut [f32], f32);
/// Batched short-row kernel for the t-distribution pattern.
pub type TDistBatchKernel = fn(&[GatheredRow<'_>], &Dense, &mut [f32]);
/// Batched short-row kernel for the SpMM pattern.
pub type SpmmBatchKernel = fn(&[GatheredRow<'_>], &Dense, &mut [f32]);

/// Message-fill kernel for the embedding pattern (mega-row phase A):
/// computes `h[i] = σ(x_u · y_{cols[i]})` for a column slice.
pub type EmbedMsgKernel = fn(&[f32], &[usize], &Dense, &SigmoidKind, &mut [f32]);
/// Message-fill kernel for the FR pattern.
pub type FrMsgKernel = fn(&[f32], &[usize], &Dense, f32, &mut [f32]);
/// Message-fill kernel for the t-distribution pattern.
pub type TDistMsgKernel = fn(&[f32], &[usize], &Dense, &mut [f32]);
/// Column-span sweep kernel (mega-row phase B): folds *all* neighbor
/// messages into one VLEN-aligned span `z[span_off .. span_off + w)` of
/// the output row, in original neighbor order. Splitting `d` into spans
/// keeps the per-element accumulation order identical to the strip
/// kernel while letting threads own disjoint spans.
pub type SpanSweepKernel = fn(&[usize], &[f32], &Dense, &mut [f32], usize);

// ---------------------------------------------------------------------------
// Dynamic-dimension kernels (8-lane strips, z_u in memory)
// ---------------------------------------------------------------------------
//
// These are thin fronts over the ISA-monomorphized entries in
// [`strip`]: each resolves the active backend once per row. The
// dispatcher avoids even that by calling the `*_dyn_kernel(backend)`
// selectors once per launch.

/// Embedding, dynamic d: `z_u += σ(x_u·y_v) · y_v` per neighbor.
pub fn embed_row_dyn(
    xu: &[f32],
    cols: &[usize],
    vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    sk: &SigmoidKind,
) {
    embed_dyn_kernel(active_backend())(xu, cols, vals, y, zu, sk)
}

/// FR model, dynamic d: `z_u += α·‖x_u − y_v‖ · y_v` per neighbor.
pub fn fr_row_dyn(xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32], alpha: f32) {
    fr_dyn_kernel(active_backend())(xu, cols, vals, y, zu, alpha)
}

/// GCN/SpMM, dynamic d: `z_u += a_uv · y_v` per neighbor.
pub fn spmm_row_dyn(cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]) {
    spmm_dyn_kernel(active_backend())(cols, vals, y, zu)
}

/// t-distribution embedding, dynamic d:
/// `z_u += y_v / (1 + ‖x_u − y_v‖²)` per neighbor. The squared distance
/// feeds the rational kernel directly — no square root needed.
pub fn tdist_row_dyn(xu: &[f32], cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]) {
    tdist_dyn_kernel(active_backend())(xu, cols, vals, y, zu)
}

// ---------------------------------------------------------------------------
// Const-dimension kernels (register blocking, z_u stored once per row)
// ---------------------------------------------------------------------------

/// Embedding with compile-time dimension: the Fig. 5 kernel. `x_u` is
/// copied into a fixed-size block once, `z_u` accumulates in a
/// fixed-size block for the entire neighbor loop and is stored once.
pub fn embed_row_const<const D: usize>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    sk: &SigmoidKind,
) {
    debug_assert_eq!(xu.len(), D);
    let mut xreg = [0f32; D];
    xreg.copy_from_slice(xu);
    let mut zreg = [0f32; D];
    for &v in cols {
        let yv = y.row(v);
        // VOP+ROP: dot product over the fixed block (fully unrolled).
        let mut acc = F32x8::zero();
        let mut k = 0;
        while k + VLEN <= D {
            acc = acc.fma(F32x8::load(&xreg[k..]), F32x8::load(&yv[k..]));
            k += VLEN;
        }
        let mut s = acc.hsum();
        while k < D {
            s += xreg[k] * yv[k];
            k += 1;
        }
        // SOP + broadcast.
        let h = F32x8::splat(sk.eval(s));
        // MOP+AOP: fused multiply-accumulate into the register block.
        let mut k = 0;
        while k + VLEN <= D {
            let z = F32x8::load(&zreg[k..]).fma(h, F32x8::load(&yv[k..]));
            z.store(&mut zreg[k..]);
            k += VLEN;
        }
        while k < D {
            zreg[k] += h.0[0] * yv[k];
            k += 1;
        }
    }
    // Single store of z_u ("non-temporal memory write" in Fig. 5).
    zu.copy_from_slice(&zreg);
}

/// FR model with compile-time dimension.
pub fn fr_row_const<const D: usize>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
    alpha: f32,
) {
    debug_assert_eq!(xu.len(), D);
    let mut xreg = [0f32; D];
    xreg.copy_from_slice(xu);
    let mut zreg = [0f32; D];
    for &v in cols {
        let yv = y.row(v);
        let mut acc = F32x8::zero();
        let mut k = 0;
        while k + VLEN <= D {
            let dvec = F32x8::load(&xreg[k..]).sub(F32x8::load(&yv[k..]));
            acc = acc.fma(dvec, dvec);
            k += VLEN;
        }
        let mut s = acc.hsum();
        while k < D {
            let dv = xreg[k] - yv[k];
            s += dv * dv;
            k += 1;
        }
        let h = F32x8::splat(alpha * s.sqrt());
        let mut k = 0;
        while k + VLEN <= D {
            let z = F32x8::load(&zreg[k..]).fma(h, F32x8::load(&yv[k..]));
            z.store(&mut zreg[k..]);
            k += VLEN;
        }
        while k < D {
            zreg[k] += h.0[0] * yv[k];
            k += 1;
        }
    }
    zu.copy_from_slice(&zreg);
}

/// t-distribution embedding with compile-time dimension.
pub fn tdist_row_const<const D: usize>(
    xu: &[f32],
    cols: &[usize],
    _vals: &[f32],
    y: &Dense,
    zu: &mut [f32],
) {
    debug_assert_eq!(xu.len(), D);
    let mut xreg = [0f32; D];
    xreg.copy_from_slice(xu);
    let mut zreg = [0f32; D];
    for &v in cols {
        let yv = y.row(v);
        let mut acc = F32x8::zero();
        let mut k = 0;
        while k + VLEN <= D {
            let dvec = F32x8::load(&xreg[k..]).sub(F32x8::load(&yv[k..]));
            acc = acc.fma(dvec, dvec);
            k += VLEN;
        }
        let mut s = acc.hsum();
        while k < D {
            let dv = xreg[k] - yv[k];
            s += dv * dv;
            k += 1;
        }
        let h = F32x8::splat(1.0 / (1.0 + s));
        let mut k = 0;
        while k + VLEN <= D {
            let z = F32x8::load(&zreg[k..]).fma(h, F32x8::load(&yv[k..]));
            z.store(&mut zreg[k..]);
            k += VLEN;
        }
        while k < D {
            zreg[k] += h.0[0] * yv[k];
            k += 1;
        }
    }
    zu.copy_from_slice(&zreg);
}

/// GCN/SpMM with compile-time dimension.
pub fn spmm_row_const<const D: usize>(cols: &[usize], vals: &[f32], y: &Dense, zu: &mut [f32]) {
    let mut zreg = [0f32; D];
    for (&v, &a) in cols.iter().zip(vals) {
        let yv = y.row(v);
        let av = F32x8::splat(a);
        let mut k = 0;
        while k + VLEN <= D {
            let z = F32x8::load(&zreg[k..]).fma(av, F32x8::load(&yv[k..]));
            z.store(&mut zreg[k..]);
            k += VLEN;
        }
        while k < D {
            zreg[k] += a * yv[k];
            k += 1;
        }
    }
    zu.copy_from_slice(&zreg);
}

// ---------------------------------------------------------------------------
// The "code generator": instantiate const kernels per benchmark dimension
// ---------------------------------------------------------------------------

macro_rules! generate_kernels {
    ($($d:literal),+ $(,)?) => {
        /// Dimensions with compiled const-generic specializations — the
        /// Rust analogue of the basefile-driven kernel generation list.
        pub const GENERATED_DIMS: &[usize] = &[$($d),+];

        /// Look up the generated embedding kernel for dimension `d`.
        pub fn embed_kernel_for(d: usize) -> Option<EmbedRowKernel> {
            match d {
                $( $d => Some(embed_row_const::<$d>), )+
                _ => None,
            }
        }

        /// Look up the generated FR kernel for dimension `d`.
        pub fn fr_kernel_for(d: usize) -> Option<FrRowKernel> {
            match d {
                $( $d => Some(fr_row_const::<$d>), )+
                _ => None,
            }
        }

        /// Look up the generated SpMM kernel for dimension `d`.
        pub fn spmm_kernel_for(d: usize) -> Option<SpmmRowKernel> {
            match d {
                $( $d => Some(spmm_row_const::<$d>), )+
                _ => None,
            }
        }

        /// Look up the generated t-distribution kernel for dimension `d`.
        pub fn tdist_kernel_for(d: usize) -> Option<TDistRowKernel> {
            match d {
                $( $d => Some(tdist_row_const::<$d>), )+
                _ => None,
            }
        }
    };
}

// The paper's benchmark dimensions {32..512} plus small dims used by the
// examples and by Fig. 10(b)'s d=16 point, and 1024 for Fig. 11(b).
generate_kernels!(8, 16, 32, 64, 128, 256, 512, 1024);

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_ops::sigmoid;
    use fusedmm_sparse::coo::{Coo, Dedup};
    use fusedmm_sparse::csr::Csr;

    fn star(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for v in 1..n {
            c.push(0, v, 0.5 + v as f32 * 0.1);
        }
        c.to_csr(Dedup::Last)
    }

    fn feats(n: usize, d: usize, seed: f32) -> Dense {
        Dense::from_fn(n, d, |r, c| ((r * 31 + c * 7) as f32 * 0.01 + seed).sin() * 0.5)
    }

    #[test]
    fn embed_dyn_matches_scalar_reference() {
        let a = star(6);
        for d in [4usize, 8, 12, 32] {
            let x = feats(6, d, 0.1);
            let y = feats(6, d, 0.7);
            let (cols, vals) = a.row(0);
            let mut z = vec![0f32; d];
            embed_row_dyn(x.row(0), cols, vals, &y, &mut z, &SigmoidKind::Exact);
            // scalar reference
            let mut zr = vec![0f32; d];
            for &v in cols {
                let s: f32 = x.row(0).iter().zip(y.row(v)).map(|(a, b)| a * b).sum();
                let h = sigmoid(s);
                for (o, &yv) in zr.iter_mut().zip(y.row(v)) {
                    *o += h * yv;
                }
            }
            for k in 0..d {
                assert!((z[k] - zr[k]).abs() < 1e-4, "d={d} k={k}: {} vs {}", z[k], zr[k]);
            }
        }
    }

    #[test]
    fn embed_const_matches_dyn() {
        let a = star(10);
        let d = 32;
        let x = feats(10, d, 0.3);
        let y = feats(10, d, 0.9);
        let (cols, vals) = a.row(0);
        let mut z_dyn = vec![0f32; d];
        let mut z_const = vec![0f32; d];
        embed_row_dyn(x.row(0), cols, vals, &y, &mut z_dyn, &SigmoidKind::Exact);
        embed_row_const::<32>(x.row(0), cols, vals, &y, &mut z_const, &SigmoidKind::Exact);
        for k in 0..d {
            assert!((z_dyn[k] - z_const[k]).abs() < 1e-5);
        }
    }

    #[test]
    fn fr_const_matches_dyn() {
        let a = star(8);
        let d = 16;
        let x = feats(8, d, 0.2);
        let y = feats(8, d, 0.4);
        let (cols, vals) = a.row(0);
        let mut z_dyn = vec![0f32; d];
        let mut z_const = vec![0f32; d];
        fr_row_dyn(x.row(0), cols, vals, &y, &mut z_dyn, 0.7);
        fr_row_const::<16>(x.row(0), cols, vals, &y, &mut z_const, 0.7);
        for k in 0..d {
            assert!((z_dyn[k] - z_const[k]).abs() < 1e-5);
        }
    }

    #[test]
    fn tdist_const_matches_dyn() {
        let a = star(8);
        let d = 16;
        let x = feats(8, d, 0.25);
        let y = feats(8, d, 0.45);
        let (cols, vals) = a.row(0);
        let mut z_dyn = vec![0f32; d];
        let mut z_const = vec![0f32; d];
        tdist_row_dyn(x.row(0), cols, vals, &y, &mut z_dyn);
        tdist_row_const::<16>(x.row(0), cols, vals, &y, &mut z_const);
        for k in 0..d {
            assert!((z_dyn[k] - z_const[k]).abs() < 1e-5);
        }
    }

    #[test]
    fn tdist_messages_bounded_by_one() {
        // h = 1/(1+s) with s >= 0, so each edge contributes at most y_v.
        let a = star(5);
        let d = 8;
        let x = feats(5, d, 0.1);
        let y = Dense::filled(5, d, 1.0);
        let mut z = vec![0f32; d];
        tdist_row_dyn(x.row(0), a.row(0).0, a.row(0).1, &y, &mut z);
        let degree = a.row_nnz(0) as f32;
        assert!(z.iter().all(|&v| v > 0.0 && v <= degree));
    }

    #[test]
    fn spmm_const_matches_dyn_with_weights() {
        let a = star(8);
        let d = 8;
        let y = feats(8, d, 0.6);
        let (cols, vals) = a.row(0);
        let mut z_dyn = vec![0f32; d];
        let mut z_const = vec![0f32; d];
        spmm_row_dyn(cols, vals, &y, &mut z_dyn);
        spmm_row_const::<8>(cols, vals, &y, &mut z_const);
        for k in 0..d {
            assert!((z_dyn[k] - z_const[k]).abs() < 1e-5);
        }
    }

    #[test]
    fn generated_dim_lookup() {
        assert!(embed_kernel_for(128).is_some());
        assert!(fr_kernel_for(512).is_some());
        assert!(spmm_kernel_for(64).is_some());
        assert!(tdist_kernel_for(128).is_some());
        assert!(embed_kernel_for(100).is_none());
        assert!(tdist_kernel_for(100).is_none());
        assert!(GENERATED_DIMS.contains(&256));
    }

    #[test]
    fn lut_sigmoid_close_to_exact_in_kernel() {
        let a = star(5);
        let d = 16;
        let x = feats(5, d, 0.1);
        let y = feats(5, d, 0.2);
        let (cols, vals) = a.row(0);
        let mut z_exact = vec![0f32; d];
        let mut z_lut = vec![0f32; d];
        embed_row_dyn(x.row(0), cols, vals, &y, &mut z_exact, &SigmoidKind::Exact);
        let lut = SigmoidKind::Lut(Arc::new(SigmoidLut::default_table()));
        embed_row_dyn(x.row(0), cols, vals, &y, &mut z_lut, &lut);
        for k in 0..d {
            assert!((z_exact[k] - z_lut[k]).abs() < 5e-3);
        }
    }

    #[test]
    fn empty_row_leaves_zero() {
        let d = 8;
        let y = feats(4, d, 0.5);
        let mut z = vec![0f32; d];
        embed_row_const::<8>(&[0.0; 8], &[], &[], &y, &mut z, &SigmoidKind::Exact);
        assert!(z.iter().all(|&v| v == 0.0));
    }
}
