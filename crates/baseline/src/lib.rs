//! Baseline implementations the paper compares FusedMM against.
//!
//! Three comparators appear in the evaluation:
//!
//! * **DGL kernels** (Tables VI, VIII; Figs. 8–11) — separate
//!   general-purpose SDDMM and SpMM kernels that materialize the
//!   edge-message tensor `H` between phases. Reproduced in [`sddmm`],
//!   [`spmm`], and composed per application in [`unfused`]. The
//!   intermediate allocation (`O(d·nnz)` for vector messages) is
//!   tracked, since it drives the paper's memory results (Fig. 10b) and
//!   out-of-memory entries (Table VI).
//! * **PyTorch dense ops** (Table VIII) — the embedding update written
//!   as a chain of dense tensor operations with full temporaries,
//!   including the dense `B × n` score matrix. Reproduced in [`tensor`].
//! * **Intel MKL inspector–executor SpMM** (Table VII) — an
//!   analysis-then-execute sparse matrix × dense matrix product.
//!   Reproduced from scratch in [`iespmm`].
//!
//! All baselines are multithreaded with the same PART1D row bands the
//! fused kernel uses, so comparisons isolate *fusion* and *blocking*,
//! not threading quality — mirroring the paper, where DGL's kernels are
//! also parallel and "scale well" (Fig. 10a) yet lose on memory traffic.

pub mod edge_tensor;
pub mod iespmm;
pub mod sddmm;
pub mod spmm;
pub mod tensor;
pub mod unfused;

pub use edge_tensor::EdgeTensor;
pub use iespmm::{IeSpmm, IeSpmmStats};
pub use unfused::{unfused_pipeline, UnfusedOutput};
