//! General-purpose SpMM — the vertex-wise aggregation kernel (Eq. 3).
//!
//! `Z = H × Y` with user-defined multiply (MOP) and accumulate (AOP):
//! `z_u = ⊕_{h_uv ≠ 0} φ(y_v, h_uv)`. The messages `H` were materialized
//! by the SDDMM phase and are *re-read* here — the second pass over
//! `O(nnz)` (or `O(d·nnz)`) data that the fused kernel avoids.

use fusedmm_core::driver::parallel_row_bands;
use fusedmm_core::part::PartitionStrategy;
use fusedmm_ops::{AOp, MOp, Message};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::edge_tensor::EdgeTensor;

/// Generalized SpMM over materialized messages.
///
/// `a` supplies the sparsity pattern and edge values (for MOPs that use
/// `a_uv`), `h` the per-edge messages in `a`'s CSR edge order, `y` the
/// neighbor features.
pub fn gspmm(a: &Csr, h: &EdgeTensor, y: &Dense, mop: &MOp, aop: &AOp) -> Dense {
    assert_eq!(h.nnz(), a.nnz(), "one message per nonzero required");
    assert_eq!(y.nrows(), a.ncols(), "Y must cover all source vertices");
    let d = y.ncols();
    assert!(
        h.is_scalar() || h.dim() == d,
        "vector messages must match the feature dimension ({} vs {d})",
        h.dim()
    );
    let mut z = Dense::zeros(a.nrows(), d);
    let identity = aop.identity();
    let rowptr = a.rowptr();
    parallel_row_bands(a, &mut z, None, PartitionStrategy::NnzBalanced, |rows, band| {
        let mut w = vec![0f32; d];
        for (i, u) in rows.enumerate() {
            let zu = &mut band[i * d..(i + 1) * d];
            let (cols, vals) = a.row(u);
            if cols.is_empty() {
                zu.fill(0.0);
                continue;
            }
            if identity != 0.0 {
                zu.fill(identity);
            }
            let base = rowptr[u];
            for (k, (&v, &aval)) in cols.iter().zip(vals).enumerate() {
                let e = base + k;
                let msg = if h.is_scalar() {
                    Message::Scalar(h.scalar(e))
                } else {
                    Message::Vector(h.msg(e))
                };
                mop.apply(msg, y.row(v), aval, &mut w);
                aop.apply(zu, &w);
            }
        }
    });
    z
}

/// Plain SpMM `Z = A × Y` (messages = edge weights, MUL/ASUM) — the
/// standard-semiring case DGL hands to vendor libraries, and the
/// operation Table VII compares against MKL.
pub fn spmm(a: &Csr, y: &Dense) -> Dense {
    let h = EdgeTensor::from_scalars(a.values());
    gspmm(a, &h, y, &MOp::Mul, &AOp::Sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn tri() -> Csr {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 2.0);
        c.push(0, 2, 1.0);
        c.push(2, 0, 1.0);
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn plain_spmm_known_answer() {
        let a = tri();
        let y = Dense::from_rows(3, 2, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]).unwrap();
        let z = spmm(&a, &y);
        // z0 = 2*y1 + 1*y2 = (7, 70); z2 = 1*y0
        assert_eq!(z.row(0), &[7.0, 70.0]);
        assert_eq!(z.row(1), &[0.0, 0.0]);
        assert_eq!(z.row(2), &[1.0, 10.0]);
    }

    #[test]
    fn scalar_messages_scale_neighbors() {
        let a = tri();
        let y = Dense::filled(3, 2, 1.0);
        let h = EdgeTensor::from_scalars(&[0.5, 0.25, 4.0]);
        let z = gspmm(&a, &h, &y, &MOp::Mul, &AOp::Sum);
        assert_eq!(z.row(0), &[0.75, 0.75]);
        assert_eq!(z.row(2), &[4.0, 4.0]);
    }

    #[test]
    fn vector_messages_with_max_aggregation() {
        let a = tri();
        let y = Dense::zeros(3, 2);
        let mut h = EdgeTensor::zeros(3, 2);
        h.msg_mut(0).copy_from_slice(&[1.0, -1.0]);
        h.msg_mut(1).copy_from_slice(&[0.5, 2.0]);
        h.msg_mut(2).copy_from_slice(&[3.0, 3.0]);
        // MOP Mul on vector messages multiplies by a_uv.
        let z = gspmm(&a, &h, &y, &MOp::Mul, &AOp::Max);
        // row0: max(2*[1,-1], 1*[0.5,2]) = [2, 2]
        assert_eq!(z.row(0), &[2.0, 2.0]);
        // row1 isolated -> zeros
        assert_eq!(z.row(1), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one message per nonzero")]
    fn message_count_mismatch_panics() {
        let a = tri();
        let y = Dense::zeros(3, 2);
        let h = EdgeTensor::zeros(2, 1);
        let _ = gspmm(&a, &h, &y, &MOp::Mul, &AOp::Sum);
    }

    #[test]
    fn rectangular_spmm() {
        let mut c = Coo::new(2, 4);
        c.push(0, 3, 1.0);
        c.push(1, 1, 2.0);
        let a = c.to_csr(Dedup::Last);
        let y = Dense::from_fn(4, 3, |r, _| r as f32);
        let z = spmm(&a, &y);
        assert_eq!(z.row(0), &[3.0, 3.0, 3.0]);
        assert_eq!(z.row(1), &[2.0, 2.0, 2.0]);
    }
}
