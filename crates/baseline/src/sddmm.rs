//! General-purpose SDDMM — the edge-wise message kernel (paper Eq. 2).
//!
//! `H = (X ⊙ Yᵀ) ⊙ A`: for every nonzero `(u, v)` of `A`, compute a
//! message from `x_u` and `y_v` and *store it* in an [`EdgeTensor`].
//! This is DGL's `gsddmm`: the output is materialized, read back by the
//! subsequent SpMM — the extra memory traffic FusedMM eliminates.
//!
//! Two entry points mirror DGL's primitives:
//! * [`sddmm_dot`] — the fused `u_dot_v` producing scalar messages
//!   (what DGL uses for the embedding pattern, keeping `H` scalar);
//! * [`sddmm_vop`] — elementwise binary op producing `d`-vector
//!   messages (what the FR and MLP patterns require, making `H` a
//!   sparse tensor of size `O(d·nnz)`).
//!
//! Edge-wise post-processing ([`edge_reduce`], [`edge_scale`]) models
//! DGL running separate dense ops over the edge tensor, each producing
//! a fresh tensor.

use fusedmm_core::part::{Partition, PartitionStrategy};
use fusedmm_ops::{ROp, SOp, VOp};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::edge_tensor::EdgeTensor;

/// Run `body(u, edge_range, out_band)` for every row of `a` in parallel,
/// where `out_band` is the slice of `out` covering that row's edges
/// (`dim` values per edge).
fn for_rows_into_edges<F>(a: &Csr, out: &mut [f32], dim: usize, body: F)
where
    F: Fn(usize, std::ops::Range<usize>, &mut [f32]) + Sync,
{
    let t = rayon::current_num_threads().max(1);
    let part = Partition::part1d(a, t, PartitionStrategy::NnzBalanced);
    let rowptr = a.rowptr();
    let mut bands: Vec<(std::ops::Range<usize>, &mut [f32])> = Vec::with_capacity(part.len());
    let mut rest = out;
    let mut consumed = 0usize;
    for i in 0..part.len() {
        let rows = part.rows(i);
        let edges = (rowptr[rows.end] - rowptr[rows.start]) * dim;
        let (band, tail) = rest.split_at_mut(edges);
        bands.push((rows, band));
        rest = tail;
        consumed += edges;
    }
    debug_assert_eq!(consumed, a.nnz() * dim);
    rayon::scope(|scope| {
        for (rows, band) in bands {
            let body = &body;
            scope.spawn(move |_| {
                let base = rowptr[rows.start];
                for u in rows {
                    let lo = rowptr[u] - base;
                    let hi = rowptr[u + 1] - base;
                    body(u, rowptr[u]..rowptr[u + 1], &mut band[lo * dim..hi * dim]);
                }
            });
        }
    });
}

/// Scalar-message SDDMM: `h_e = x_u · y_v` for every edge `e = (u, v)`.
pub fn sddmm_dot(a: &Csr, x: &Dense, y: &Dense) -> EdgeTensor {
    assert_eq!(x.nrows(), a.nrows());
    assert_eq!(y.nrows(), a.ncols());
    assert_eq!(x.ncols(), y.ncols());
    let mut h = EdgeTensor::zeros_scalar(a.nnz());
    for_rows_into_edges(a, h.data_mut(), 1, |u, edges, band| {
        let xu = x.row(u);
        let (cols, _) = a.row(u);
        debug_assert_eq!(cols.len(), edges.len());
        for (slot, &v) in band.iter_mut().zip(cols) {
            *slot = fusedmm_core::simd::dot(xu, y.row(v));
        }
    });
    h
}

/// Vector-message SDDMM: `h_e = vop(x_u, y_v)` (a `d`-vector) for every
/// edge. This is the allocation that makes unfused FR/MLP pipelines
/// explode with `d` (Table VI's `×` entries).
pub fn sddmm_vop(a: &Csr, x: &Dense, y: &Dense, vop: &VOp) -> EdgeTensor {
    assert_eq!(x.nrows(), a.nrows());
    assert_eq!(y.nrows(), a.ncols());
    assert_eq!(x.ncols(), y.ncols());
    let d = x.ncols();
    let mut h = EdgeTensor::zeros(a.nnz(), d);
    for_rows_into_edges(a, h.data_mut(), d, |u, _edges, band| {
        let xu = x.row(u);
        let (cols, vals) = a.row(u);
        for ((chunk, &v), &aval) in band.chunks_mut(d).zip(cols).zip(vals) {
            vop.apply(xu, y.row(v), aval, chunk);
        }
    });
    h
}

/// Edge-wise reduction over vector messages: `out_e = rop(h_e)`,
/// producing a fresh scalar tensor (as DGL would with a dense reduce op
/// over the edge feature dimension).
///
/// # Panics
/// Panics if `rop` is a NOOP (nothing to reduce).
pub fn edge_reduce(h: &EdgeTensor, rop: &ROp) -> EdgeTensor {
    assert!(!rop.is_noop(), "edge_reduce requires a reducing ROP");
    let mut out = EdgeTensor::zeros_scalar(h.nnz());
    let dim = h.dim();
    let src = h.data();
    out.data_mut()
        .iter_mut()
        .enumerate()
        .for_each(|(e, slot)| *slot = rop.apply(&src[e * dim..(e + 1) * dim]).expect("reducing"));
    out
}

/// Edge-wise scaling: `out_e = sop(h_e)` elementwise, producing a fresh
/// tensor. `edge_vals` supplies `a_uv` for edge-dependent SOPs.
pub fn edge_scale(h: &EdgeTensor, sop: &SOp, edge_vals: &[f32]) -> EdgeTensor {
    assert_eq!(edge_vals.len(), h.nnz(), "need one edge value per message");
    let mut out = h.clone();
    let dim = out.dim();
    for e in 0..out.nnz() {
        let a = edge_vals[e];
        for v in out.msg_mut(e) {
            *v = sop.apply_scalar(*v, a);
        }
    }
    let _ = dim;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn tri() -> Csr {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 2.0);
        c.push(0, 2, 1.0);
        c.push(2, 0, 1.0);
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn dot_messages_match_manual() {
        let a = tri();
        let x = Dense::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = Dense::from_rows(3, 2, &[1.0, 1.0, 2.0, 0.5, 0.0, 3.0]).unwrap();
        let h = sddmm_dot(&a, &x, &y);
        assert_eq!(h.dim(), 1);
        // edges in CSR order: (0,1), (0,2), (2,0)
        assert!((h.scalar(0) - (1.0 * 2.0 + 2.0 * 0.5)).abs() < 1e-6);
        assert!((h.scalar(1) - (2.0 * 3.0)).abs() < 1e-6);
        assert!((h.scalar(2) - (5.0 + 6.0)).abs() < 1e-6);
    }

    #[test]
    fn vop_messages_are_d_dimensional() {
        let a = tri();
        let x = Dense::filled(3, 4, 2.0);
        let y = Dense::filled(3, 4, 0.5);
        let h = sddmm_vop(&a, &x, &y, &VOp::Sub);
        assert_eq!(h.dim(), 4);
        assert_eq!(h.nnz(), 3);
        assert!(h.data().iter().all(|&v| (v - 1.5).abs() < 1e-6));
    }

    #[test]
    fn reduce_then_scale_pipeline() {
        let a = tri();
        let x = Dense::filled(3, 4, 1.0);
        let y = Dense::zeros(3, 4);
        let h = sddmm_vop(&a, &x, &y, &VOp::Sub); // all-ones vectors
        let r = edge_reduce(&h, &ROp::Norm); // each = sqrt(4) = 2
        assert_eq!(r.dim(), 1);
        assert!(r.data().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        let s = edge_scale(&r, &SOp::Scale(0.5), a.values());
        assert!(s.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn edge_scale_by_edge_value() {
        let a = tri();
        let h = EdgeTensor::from_scalars(&[1.0, 1.0, 1.0]);
        let s = edge_scale(&h, &SOp::ScaleByEdge, a.values());
        // edge values in CSR order: 2.0, 1.0, 1.0
        assert_eq!(s.data(), &[2.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "reducing ROP")]
    fn reduce_with_noop_panics() {
        let h = EdgeTensor::zeros(2, 3);
        let _ = edge_reduce(&h, &ROp::Noop);
    }

    #[test]
    fn parallel_sddmm_matches_on_bigger_graph() {
        // A graph spanning several partitions.
        let mut c = Coo::new(64, 64);
        for u in 0..64usize {
            for k in 1..=5usize {
                c.push(u, (u * k + k) % 64, 1.0);
            }
        }
        let a = c.to_csr(Dedup::Last);
        let x = Dense::from_fn(64, 8, |r, k| (r + k) as f32 * 0.1);
        let y = Dense::from_fn(64, 8, |r, k| (r * k) as f32 * 0.01);
        let h = sddmm_dot(&a, &x, &y);
        // spot-check every edge against a scalar dot
        let mut e = 0;
        for u in 0..64 {
            let (cols, _) = a.row(u);
            for &v in cols {
                let want: f32 = x.row(u).iter().zip(y.row(v)).map(|(p, q)| p * q).sum();
                assert!((h.scalar(e) - want).abs() < 1e-4, "edge {e}");
                e += 1;
            }
        }
    }
}
