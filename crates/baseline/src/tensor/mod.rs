//! PyTorch-equivalent dense tensor baseline (Table VIII's first row).
//!
//! The paper implements Force2Vec "using standard kernels in PyTorch" as
//! the slowest baseline: every step is a dense tensor op producing a
//! full temporary, and the edge structure is handled with a dense
//! `batch × n` score matrix rather than sparse kernels. This module is
//! that cost model in miniature: a thin [`Tensor`] wrapper whose ops
//! always allocate their outputs, a dense mask built from the adjacency
//! slice, and [`dense_embedding_update`] chaining them exactly as the
//! autograd-friendly PyTorch formulation would
//! (`σ(X Yᵀ) ⊙ mask(A) @ Y`).

use fusedmm_ops::sigmoid;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

/// A dense tensor with PyTorch-style out-of-place operations. Each op
/// allocates its result and adds it to the running temporary-bytes
/// tally, modeling eager-mode execution.
#[derive(Debug, Clone)]
pub struct Tensor {
    data: Dense,
}

/// Accumulates the bytes of every temporary a chain of ops produced.
#[derive(Debug, Default, Clone)]
pub struct OpTally {
    /// Total bytes allocated for op outputs and masks.
    pub temp_bytes: usize,
    /// Number of ops executed.
    pub ops: usize,
}

impl OpTally {
    fn charge(&mut self, t: &Dense) {
        self.temp_bytes += t.storage_bytes();
        self.ops += 1;
    }
}

impl Tensor {
    /// Wrap an existing dense matrix (no copy).
    pub fn new(data: Dense) -> Self {
        Tensor { data }
    }

    /// The underlying matrix.
    pub fn data(&self) -> &Dense {
        &self.data
    }

    /// Consume into the underlying matrix.
    pub fn into_data(self) -> Dense {
        self.data
    }

    /// `self × other` — dense matmul, fresh output.
    pub fn matmul(&self, other: &Tensor, tally: &mut OpTally) -> Tensor {
        let out = self.data.matmul(&other.data);
        tally.charge(&out);
        Tensor { data: out }
    }

    /// Transposed copy (PyTorch `.t().contiguous()`).
    pub fn transpose(&self, tally: &mut OpTally) -> Tensor {
        let (r, c) = (self.data.nrows(), self.data.ncols());
        let out = Dense::from_fn(c, r, |i, j| self.data.get(j, i));
        tally.charge(&out);
        Tensor { data: out }
    }

    /// Elementwise sigmoid, fresh output.
    pub fn sigmoid(&self, tally: &mut OpTally) -> Tensor {
        let mut out = self.data.clone();
        for v in out.as_mut_slice() {
            *v = sigmoid(*v);
        }
        tally.charge(&out);
        Tensor { data: out }
    }

    /// Elementwise unary map, fresh output (PyTorch pointwise op).
    pub fn map(&self, f: impl Fn(f32) -> f32, tally: &mut OpTally) -> Tensor {
        let mut out = self.data.clone();
        for v in out.as_mut_slice() {
            *v = f(*v);
        }
        tally.charge(&out);
        Tensor { data: out }
    }

    /// Elementwise product, fresh output.
    pub fn mul(&self, other: &Tensor, tally: &mut OpTally) -> Tensor {
        assert_eq!(self.data.nrows(), other.data.nrows());
        assert_eq!(self.data.ncols(), other.data.ncols());
        let mut out = self.data.clone();
        for (o, &b) in out.as_mut_slice().iter_mut().zip(other.data.as_slice()) {
            *o *= b;
        }
        tally.charge(&out);
        Tensor { data: out }
    }
}

/// Densify a sparse adjacency slice into a full mask/weight matrix —
/// the `to_dense()` a pure-PyTorch formulation needs before elementwise
/// masking. This allocation alone is `4·m·n` bytes.
pub fn dense_mask(a: &Csr, tally: &mut OpTally) -> Tensor {
    let mut m = Dense::zeros(a.nrows(), a.ncols());
    for (r, c, v) in a.iter() {
        m.set(r, c, v);
    }
    tally.charge(&m);
    Tensor::new(m)
}

/// The PyTorch-style embedding update for a minibatch:
/// `Z = (σ(X Yᵀ) ⊙ dense(A)) × Y`.
///
/// Produces the same `Z` as the fused sigmoid-embedding kernel on
/// binary adjacency slices (mask values scale messages the same way
/// MOP::Mul would for weighted edges is *not* modeled here — PyTorch
/// implementations mask with the 0/1 pattern, so weights must be 1).
/// Returns `Z` and the tally of temporaries, which is Θ(m·n).
pub fn dense_embedding_update(a: &Csr, x: &Dense, y: &Dense) -> (Dense, OpTally) {
    assert_eq!(x.nrows(), a.nrows());
    assert_eq!(y.nrows(), a.ncols());
    let mut tally = OpTally::default();
    let xt = Tensor::new(x.clone());
    let yt = Tensor::new(y.clone());
    let scores = xt.matmul(&yt.transpose(&mut tally), &mut tally); // B×n
    let probs = scores.sigmoid(&mut tally); // B×n
    let mask = dense_mask(a, &mut tally); // B×n
    let masked = probs.mul(&mask, &mut tally); // B×n
    let z = masked.matmul(&yt, &mut tally); // B×d
    (z.into_data(), tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_core::fusedmm_reference;
    use fusedmm_ops::OpSet;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn binary_graph(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
            c.push(u, (u + 4) % n, 1.0);
        }
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn dense_update_matches_fused_embedding() {
        let n = 12;
        let a = binary_graph(n);
        let x = Dense::from_fn(n, 6, |r, k| ((r + 2 * k) as f32 * 0.1).sin());
        let y = Dense::from_fn(n, 6, |r, k| ((r * k + 1) as f32 * 0.07).cos());
        let (z, _) = dense_embedding_update(&a, &x, &y);
        let fused = fusedmm_reference(&a, &x, &y, &OpSet::sigmoid_embedding(None));
        assert!(z.max_abs_diff(&fused) < 1e-4);
    }

    #[test]
    fn temporaries_scale_with_m_times_n() {
        let a = binary_graph(20);
        let x = Dense::zeros(20, 4);
        let y = Dense::zeros(20, 4);
        let (_, tally) = dense_embedding_update(&a, &x, &y);
        // At least 3 full B×n temporaries (scores, probs, mask, masked).
        assert!(tally.temp_bytes >= 4 * 20 * 20 * 4);
        assert!(tally.ops >= 5);
    }

    #[test]
    fn dense_temporaries_dwarf_sparse_intermediates() {
        // Table VIII's story: dense PyTorch >> DGL sparse >> fused.
        use crate::unfused::unfused_pipeline;
        let a = binary_graph(64);
        let x = Dense::zeros(64, 8);
        let y = Dense::zeros(64, 8);
        let (_, dense_tally) = dense_embedding_update(&a, &x, &y);
        let sparse = unfused_pipeline(&a, &x, &y, &OpSet::sigmoid_embedding(None));
        assert!(dense_tally.temp_bytes > 5 * sparse.intermediate_bytes);
    }

    #[test]
    fn transpose_and_mask_correct() {
        let mut tally = OpTally::default();
        let t = Tensor::new(Dense::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap());
        let tt = t.transpose(&mut tally);
        assert_eq!(tt.data().get(2, 1), 6.0);

        let mut c = Coo::new(2, 2);
        c.push(0, 1, 2.5);
        let mask = dense_mask(&c.to_csr(Dedup::Last), &mut tally);
        assert_eq!(mask.data().get(0, 1), 2.5);
        assert_eq!(mask.data().get(1, 0), 0.0);
    }

    #[test]
    fn sigmoid_tensor_elementwise() {
        let mut tally = OpTally::default();
        let t = Tensor::new(Dense::zeros(1, 3));
        let s = t.sigmoid(&mut tally);
        assert!(s.data().as_slice().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }
}
