//! The DGL-equivalent unfused pipeline: SDDMM → edge ops → SpMM.
//!
//! Composes the separate kernels exactly as DGL executes each Table III
//! application, materializing every intermediate:
//!
//! * **embedding** — `u_dot_v` SDDMM (scalar `H`), edgewise sigmoid
//!   (fresh scalar tensor), SpMM;
//! * **FR model** — elementwise SDDMM (`d`-vector `H`, the `O(d·nnz)`
//!   allocation behind Table VI's out-of-memory entries and Fig. 10b's
//!   linear memory growth), edgewise NORM reduce, edgewise SCAL, SpMM;
//! * **GCN** — no SDDMM; edge-weight messages straight into SpMM;
//! * **GNN-MLP** — elementwise MLP SDDMM (`d`-vector `H`), edgewise
//!   sigmoid, SpMM with AMAX;
//! * any other [`OpSet`] — generic decomposition through the same
//!   stages.
//!
//! [`UnfusedOutput::intermediate_bytes`] reports the total intermediate
//! storage under the paper's 12-bytes-per-element model, which the
//! memory experiment (Fig. 10b) and the OOM policy of the benchmark
//! harness consume.

use fusedmm_ops::{OpSet, Pattern, SOp};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::edge_tensor::EdgeTensor;
use crate::sddmm::{edge_reduce, edge_scale, sddmm_dot, sddmm_vop};
use crate::spmm::gspmm;

/// Result of the unfused pipeline plus its intermediate-memory bill.
#[derive(Debug)]
pub struct UnfusedOutput {
    /// The aggregated output `Z` (identical math to the fused kernel).
    pub z: Dense,
    /// Bytes of materialized intermediates (all edge tensors produced),
    /// under the paper's 12 B/element sparse-storage model.
    pub intermediate_bytes: usize,
}

/// Run the unfused SDDMM→SpMM pipeline for `ops`.
pub fn unfused_pipeline(a: &Csr, x: &Dense, y: &Dense, ops: &OpSet) -> UnfusedOutput {
    let mut intermediate = 0usize;
    let vals = a.values();

    // --- SDDMM phase: materialize messages ---------------------------------
    let h: EdgeTensor = match ops.pattern {
        Pattern::Gcn => {
            // DGL's copy_u/e-mul pattern: messages are the edge weights;
            // one scalar tensor copy.
            let t = EdgeTensor::from_scalars(vals);
            intermediate += t.storage_bytes();
            t
        }
        Pattern::SigmoidEmbedding => {
            // DGL fuses the dot product inside SDDMM (u_dot_v): scalar H.
            let dots = sddmm_dot(a, x, y);
            intermediate += dots.storage_bytes();
            let scaled = edge_scale(&dots, &ops.sop, vals);
            intermediate += scaled.storage_bytes();
            scaled
        }
        _ => {
            // Generic decomposition: elementwise VOP (d-vector H), then
            // optional reduce, then optional scale — one materialized
            // tensor per stage, as separate kernel launches would make.
            let mut t = sddmm_vop(a, x, y, &ops.vop);
            intermediate += t.storage_bytes();
            if !ops.rop.is_noop() {
                t = edge_reduce(&t, &ops.rop);
                intermediate += t.storage_bytes();
            }
            if !matches!(ops.sop, SOp::Noop) {
                t = edge_scale(&t, &ops.sop, vals);
                intermediate += t.storage_bytes();
            }
            t
        }
    };

    // --- SpMM phase: aggregate the stored messages --------------------------
    let z = gspmm(a, &h, y, &ops.mop, &ops.aop);
    UnfusedOutput { z, intermediate_bytes: intermediate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_core::fusedmm_reference;
    use fusedmm_ops::Mlp;
    use fusedmm_sparse::coo::{Coo, Dedup};
    use std::sync::Arc;

    fn graph(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0);
            c.push(u, (u + 2) % n, 0.5);
            c.push(u, (u * 3 + 1) % n, 1.5);
        }
        c.to_csr(Dedup::Last)
    }

    fn feats(n: usize, d: usize, phase: f32) -> Dense {
        Dense::from_fn(n, d, |r, k| ((r * 7 + k * 3) as f32 * 0.05 + phase).sin() * 0.5)
    }

    #[test]
    fn unfused_equals_fused_for_every_preset() {
        let n = 24;
        let a = graph(n);
        let d = 12;
        let x = feats(n, d, 0.0);
        let y = feats(n, d, 1.0);
        let presets = [
            OpSet::sigmoid_embedding(None),
            OpSet::fr_model(0.25),
            OpSet::gcn(),
            OpSet::gnn_mlp(Arc::new(Mlp::seeded(d, 8, d, 3))),
        ];
        for ops in presets {
            let unfused = unfused_pipeline(&a, &x, &y, &ops);
            let fused = fusedmm_reference(&a, &x, &y, &ops);
            assert!(
                unfused.z.max_abs_diff(&fused) < 1e-4,
                "{:?}: fused and unfused disagree by {}",
                ops.pattern,
                unfused.z.max_abs_diff(&fused)
            );
        }
    }

    #[test]
    fn embedding_intermediate_is_scalar_per_edge() {
        let a = graph(16);
        let d = 64;
        let x = feats(16, d, 0.0);
        let y = feats(16, d, 0.5);
        let out = unfused_pipeline(&a, &x, &y, &OpSet::sigmoid_embedding(None));
        // Two scalar tensors: dots + sigmoided copy.
        assert_eq!(out.intermediate_bytes, 2 * 12 * a.nnz());
    }

    #[test]
    fn fr_intermediate_grows_linearly_with_d() {
        let a = graph(16);
        let mut last = 0usize;
        for d in [16usize, 32, 64] {
            let x = feats(16, d, 0.0);
            let y = feats(16, d, 0.5);
            let out = unfused_pipeline(&a, &x, &y, &OpSet::fr_model(1.0));
            // d-vector H dominates: 12*nnz*d + two scalar tensors.
            assert_eq!(out.intermediate_bytes, 12 * a.nnz() * d + 2 * 12 * a.nnz());
            assert!(out.intermediate_bytes > last);
            last = out.intermediate_bytes;
        }
    }

    #[test]
    fn gcn_intermediate_is_just_edge_weights() {
        let a = graph(16);
        let d = 32;
        let x = feats(16, d, 0.0);
        let y = feats(16, d, 0.5);
        let out = unfused_pipeline(&a, &x, &y, &OpSet::gcn());
        assert_eq!(out.intermediate_bytes, 12 * a.nnz());
    }

    #[test]
    fn fr_memory_exceeds_embedding_memory() {
        // The paper's Fig. 10(b) story in one assertion.
        let a = graph(20);
        let d = 128;
        let x = feats(20, d, 0.0);
        let y = feats(20, d, 0.5);
        let fr = unfused_pipeline(&a, &x, &y, &OpSet::fr_model(1.0));
        let em = unfused_pipeline(&a, &x, &y, &OpSet::sigmoid_embedding(None));
        assert!(fr.intermediate_bytes > 10 * em.intermediate_bytes);
    }
}
