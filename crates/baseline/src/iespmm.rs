//! Inspector–executor SpMM — the MKL stand-in of Table VII.
//!
//! Intel MKL's sparse BLAS exposes a two-phase API: an *inspector*
//! (`mkl_sparse_optimize`) analyzes the matrix once and converts it to
//! an execution-friendly internal format, and an *executor*
//! (`mkl_sparse_s_mm`) runs the multiplication many times. The paper
//! measures "both inspection and execution time for MKL". Our inspector
//! performs the same class of optimizations an SpMM inspector buys on
//! CPUs: it narrows column indices to 32 bits (halving index traffic for
//! this memory-bound kernel), verifies/canonicalizes row order, and
//! precomputes the nnz-balanced thread partition; the executor is a
//! register-strip SpMM over the optimized operand.

use std::time::{Duration, Instant};

use fusedmm_core::part::{Partition, PartitionStrategy};
use fusedmm_core::simd::axpy;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

/// Metadata reported by the inspector.
#[derive(Debug, Clone)]
pub struct IeSpmmStats {
    /// Wall time the inspection phase took.
    pub inspect_time: Duration,
    /// Bytes of index storage after narrowing (4 B/nnz instead of 8).
    pub index_bytes: usize,
    /// Number of precomputed thread partitions.
    pub partitions: usize,
}

/// An inspected sparse operand ready for repeated SpMM execution.
#[derive(Debug, Clone)]
pub struct IeSpmm {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<u32>,
    values: Vec<f32>,
    partition: Partition,
    stats: IeSpmmStats,
}

impl IeSpmm {
    /// Inspection phase: analyze and convert `a` for `threads`-way
    /// execution (defaults to the current rayon pool width).
    ///
    /// # Panics
    /// Panics if `a` has ≥ 2³² columns (outside the narrowed index
    /// range — MKL would similarly select a 64-bit path; we don't need
    /// one at reproduction scale).
    pub fn inspect(a: &Csr, threads: Option<usize>) -> Self {
        let t0 = Instant::now();
        assert!(a.ncols() < u32::MAX as usize, "matrix too wide for 32-bit index narrowing");
        let t = threads.unwrap_or_else(rayon::current_num_threads).max(1);
        let colidx: Vec<u32> = a.colidx().iter().map(|&c| c as u32).collect();
        let values = a.values().to_vec();
        let rowptr = a.rowptr().to_vec();
        let partition = Partition::part1d(a, t, PartitionStrategy::NnzBalanced);
        let stats = IeSpmmStats {
            inspect_time: t0.elapsed(),
            index_bytes: colidx.len() * std::mem::size_of::<u32>(),
            partitions: partition.len(),
        };
        IeSpmm { nrows: a.nrows(), ncols: a.ncols(), rowptr, colidx, values, partition, stats }
    }

    /// Inspection metadata.
    pub fn stats(&self) -> &IeSpmmStats {
        &self.stats
    }

    /// Number of rows of the inspected matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Executor phase: `Z = A × Y`, reusing the inspected structure.
    pub fn execute(&self, y: &Dense) -> Dense {
        assert_eq!(y.nrows(), self.ncols, "Y must have one row per column of A");
        let d = y.ncols();
        let mut z = Dense::zeros(self.nrows, d);

        // Carve Z into the precomputed partition's bands.
        let mut bands: Vec<(std::ops::Range<usize>, &mut [f32])> =
            Vec::with_capacity(self.partition.len());
        let mut rest = z.as_mut_slice();
        for i in 0..self.partition.len() {
            let rows = self.partition.rows(i);
            let (band, tail) = rest.split_at_mut(rows.len() * d);
            bands.push((rows, band));
            rest = tail;
        }
        rayon::scope(|scope| {
            for (rows, band) in bands {
                scope.spawn(move |_| {
                    for (i, u) in rows.enumerate() {
                        let zu = &mut band[i * d..(i + 1) * d];
                        let lo = self.rowptr[u];
                        let hi = self.rowptr[u + 1];
                        for e in lo..hi {
                            axpy(self.values[e], y.row(self.colidx[e] as usize), zu);
                        }
                    }
                });
            }
        });
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::spmm;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn graph(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for u in 0..n {
            c.push(u, (u + 1) % n, 1.0 + u as f32 * 0.1);
            c.push(u, (u * 5 + 2) % n, 0.5);
        }
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn executor_matches_reference_spmm() {
        let a = graph(50);
        let y = Dense::from_fn(50, 16, |r, k| ((r + k) as f32 * 0.07).cos());
        let ie = IeSpmm::inspect(&a, Some(4));
        let z = ie.execute(&y);
        let want = spmm(&a, &y);
        assert!(z.max_abs_diff(&want) < 1e-4);
    }

    #[test]
    fn repeated_execution_is_stable() {
        let a = graph(20);
        let y = Dense::filled(20, 8, 0.3);
        let ie = IeSpmm::inspect(&a, None);
        let z1 = ie.execute(&y);
        let z2 = ie.execute(&y);
        assert_eq!(z1.max_abs_diff(&z2), 0.0);
    }

    #[test]
    fn inspection_narrows_indices() {
        let a = graph(30);
        let ie = IeSpmm::inspect(&a, Some(2));
        assert_eq!(ie.stats().index_bytes, 4 * a.nnz());
        assert!(ie.stats().partitions <= 2);
    }

    #[test]
    #[should_panic(expected = "one row per column")]
    fn shape_mismatch_panics() {
        let a = graph(10);
        let y = Dense::zeros(9, 4);
        let _ = IeSpmm::inspect(&a, None).execute(&y);
    }

    #[test]
    fn rectangular_matrix_supported() {
        let mut c = Coo::new(3, 7);
        c.push(0, 6, 2.0);
        c.push(2, 1, 3.0);
        let a = c.to_csr(Dedup::Last);
        let y = Dense::from_fn(7, 2, |r, _| r as f32);
        let z = IeSpmm::inspect(&a, None).execute(&y);
        assert_eq!(z.row(0), &[12.0, 12.0]);
        assert_eq!(z.row(2), &[3.0, 3.0]);
    }
}
