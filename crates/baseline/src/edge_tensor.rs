//! The materialized edge-message tensor `H` of the unfused pipeline.
//!
//! DGL's SDDMM produces a sparse matrix (scalar messages) or sparse
//! tensor (vector messages) with exactly the sparsity of `A` (paper
//! Eq. 2 and Fig. 3b). Since the sparsity pattern is shared with `A`,
//! only the message payload is stored here, in CSR edge order; the
//! paper's 12-bytes-per-nonzero index overhead is accounted for in
//! [`EdgeTensor::storage_bytes`].

use fusedmm_sparse::BYTES_PER_NNZ;

/// Per-edge messages: `nnz` messages of `dim` f32 values each, laid out
/// in the owning matrix's CSR edge order.
///
/// Scalar and vector messages have different MOP semantics (a scalar
/// message scales the neighbor feature; a vector message is scaled by
/// the edge weight), so the kind is stored explicitly — a `dim == 1`
/// vector tensor is *not* the same as a scalar tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTensor {
    nnz: usize,
    dim: usize,
    scalar_kind: bool,
    data: Vec<f32>,
}

impl EdgeTensor {
    /// Allocate a zeroed *vector*-message tensor.
    pub fn zeros(nnz: usize, dim: usize) -> Self {
        assert!(dim > 0, "message dimension must be positive");
        EdgeTensor { nnz, dim, scalar_kind: false, data: vec![0.0; nnz * dim] }
    }

    /// Allocate a zeroed *scalar*-message tensor.
    pub fn zeros_scalar(nnz: usize) -> Self {
        EdgeTensor { nnz, dim: 1, scalar_kind: true, data: vec![0.0; nnz] }
    }

    /// Wrap existing per-edge scalars (e.g. the values of `A` for GCN's
    /// edge-weight messages).
    pub fn from_scalars(values: &[f32]) -> Self {
        EdgeTensor { nnz: values.len(), dim: 1, scalar_kind: true, data: values.to_vec() }
    }

    /// Whether messages are semantically scalar.
    pub fn is_scalar(&self) -> bool {
        self.scalar_kind
    }

    /// Number of edges.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Message dimensionality (1 = scalar messages).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The message of edge `e` (CSR order).
    #[inline]
    pub fn msg(&self, e: usize) -> &[f32] {
        &self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Mutable message of edge `e`.
    #[inline]
    pub fn msg_mut(&mut self, e: usize) -> &mut [f32] {
        &mut self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Scalar message of edge `e` (scalar-kind tensors only).
    #[inline]
    pub fn scalar(&self, e: usize) -> f32 {
        debug_assert!(self.scalar_kind, "scalar() on a vector-message tensor");
        self.data[e]
    }

    /// The full payload, edge-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable payload.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Bytes this tensor costs under the paper's model (§IV-C):
    /// `12 · nnz · dim` — index + single-precision payload per stored
    /// message element, matching "H may require 12nnz·d bytes".
    pub fn storage_bytes(&self) -> usize {
        BYTES_PER_NNZ * self.nnz * self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_edge_major() {
        let mut t = EdgeTensor::zeros(3, 2);
        t.msg_mut(1).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(t.msg(0), &[0.0, 0.0]);
        assert_eq!(t.msg(1), &[5.0, 6.0]);
        assert_eq!(t.data(), &[0.0, 0.0, 5.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn scalar_constructor() {
        let t = EdgeTensor::from_scalars(&[1.0, 2.0, 3.0]);
        assert_eq!((t.nnz(), t.dim()), (3, 1));
        assert_eq!(t.scalar(2), 3.0);
    }

    #[test]
    fn storage_matches_paper_h_model() {
        let t = EdgeTensor::zeros(100, 128);
        assert_eq!(t.storage_bytes(), 12 * 100 * 128);
        let s = EdgeTensor::zeros(100, 1);
        assert_eq!(s.storage_bytes(), 12 * 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = EdgeTensor::zeros(4, 0);
    }
}
