//! Cache observability: lock-free counters plus the per-request
//! hit-ratio distribution.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use fusedmm_perf::gauge::Gauge;
use fusedmm_perf::hist::{RatioHistogram, RatioSnapshot};

/// Live counters a [`ResultCache`](crate::ResultCache) maintains on its
/// hot paths (all relaxed atomics — recording never contends).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: AtomicU64,
    /// Lookups that missed (absent or stale entry).
    pub misses: AtomicU64,
    /// The subset of `hits` served by the route-miss re-probe: a fill
    /// landed between a lookup's miss and its routing call, so the row
    /// was both a miss (at lookup) and a hit (at routing). Reconciles
    /// the counters exactly: `hits - late_hits + misses` equals the
    /// rows looked up.
    pub late_hits: AtomicU64,
    /// Rows written into the cache.
    pub inserts: AtomicU64,
    /// Rows retired by CLOCK eviction under budget pressure.
    pub evictions: AtomicU64,
    /// Rows retired precisely by delta-update touch sets (only counts
    /// entries actually present).
    pub invalidated_rows: AtomicU64,
    /// Whole-cache (publish) invalidations recorded.
    pub flushes: AtomicU64,
    /// Misses that coalesced onto another request's in-flight
    /// computation instead of computing their own row.
    pub coalesced_misses: AtomicU64,
    /// Row computations currently registered in flight (owners not yet
    /// filled or aborted), with the deepest window ever observed.
    pub inflight: Gauge,
    /// Approximate bytes currently held across all segments.
    pub bytes: AtomicUsize,
    /// Entries currently resident across all segments.
    pub entries: AtomicUsize,
    /// Per-request hit-ratio distribution (one observation per embed
    /// request that consulted the cache).
    pub hit_ratio: RatioHistogram,
}

impl CacheStats {
    /// Point-in-time summary.
    pub fn snapshot(&self) -> CacheMetrics {
        // One consistent (current, peak) pair — two separate loads
        // could interleave with a registration and report peak <
        // current.
        let inflight = self.inflight.snapshot();
        CacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            late_hits: self.late_hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidated_rows: self.invalidated_rows.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            coalesced_misses: self.coalesced_misses.load(Ordering::Relaxed),
            inflight_rows: inflight.current,
            inflight_peak_rows: inflight.peak,
            bytes: self.bytes.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            hit_ratio: self.hit_ratio.snapshot(),
        }
    }
}

/// Point-in-time cache statistics, surfaced next to the serving
/// engine's latency metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheMetrics {
    /// Row lookups served from the cache.
    pub hits: u64,
    /// Row lookups that had to be computed.
    pub misses: u64,
    /// Hits served by the route-miss re-probe (the row's miss was
    /// already counted at lookup): `hits - late_hits + misses` equals
    /// rows looked up.
    pub late_hits: u64,
    /// Rows written into the cache.
    pub inserts: u64,
    /// Rows retired by CLOCK eviction.
    pub evictions: u64,
    /// Rows retired precisely by delta-update touch sets.
    pub invalidated_rows: u64,
    /// Publish (whole-cache) invalidations.
    pub flushes: u64,
    /// Misses that coalesced onto an in-flight computation (each saved
    /// one row computation).
    pub coalesced_misses: u64,
    /// Row computations currently registered in flight.
    pub inflight_rows: u64,
    /// Deepest in-flight row window ever observed.
    pub inflight_peak_rows: u64,
    /// Approximate resident bytes.
    pub bytes: usize,
    /// Resident entries.
    pub entries: usize,
    /// Per-request hit-ratio distribution.
    pub hit_ratio: RatioSnapshot,
}

impl CacheMetrics {
    /// Overall row-level hit ratio (`hits / (hits + misses)`), 0 when
    /// nothing was looked up.
    pub fn overall_hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} ({:.1}% hit, {} coalesced) inserts={} evict={} delta-inval={} \
             flushes={} in-flight={} (peak {}) resident={} rows / {} KiB, per-request hit \
             ratio: {}",
            self.hits,
            self.misses,
            self.overall_hit_ratio() * 100.0,
            self.coalesced_misses,
            self.inserts,
            self.evictions,
            self.invalidated_rows,
            self.flushes,
            self.inflight_rows,
            self.inflight_peak_rows,
            self.entries,
            self.bytes >> 10,
            self.hit_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = CacheStats::default();
        s.hits.fetch_add(3, Ordering::Relaxed);
        s.misses.fetch_add(1, Ordering::Relaxed);
        s.hit_ratio.record_fraction(3, 4);
        let m = s.snapshot();
        assert_eq!((m.hits, m.misses), (3, 1));
        assert!((m.overall_hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(m.hit_ratio.count, 1);
        let line = m.to_string();
        assert!(line.contains("75.0% hit"), "{line}");
    }

    #[test]
    fn empty_metrics_report_zero_ratio() {
        let m = CacheStats::default().snapshot();
        assert_eq!(m.overall_hit_ratio(), 0.0);
        assert_eq!(m.hit_ratio.count, 0);
    }
}
