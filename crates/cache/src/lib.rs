//! `fusedmm-cache` — an epoch-aware embedding result cache.
//!
//! FusedMM makes each embedding computation fast; a serving engine
//! under real traffic still recomputes the same hot rows thousands of
//! times per second. [`ResultCache`] closes that gap: it memoizes
//! computed output rows (`z_u`) keyed by vertex id, behind lock-striped
//! segments with CLOCK (second-chance) eviction under a byte budget —
//! and it understands the serving stack's epoch-versioned write path:
//!
//! * **Publish** (whole-matrix swap) invalidates *everything*, lazily:
//!   the cache records the new epoch as its flush floor and every older
//!   entry fails its stamp comparison at lookup time. No O(entries)
//!   sweep on the write path.
//! * **Delta update** (a row patch) invalidates *precisely*: only the
//!   patched vertices and the rows whose aggregation reads a patched
//!   `Y` row (their in-neighbors — see
//!   [`Csr::touch_set`](../fusedmm_sparse/csr/struct.Csr.html)) are
//!   retired, so a training-style row patch does not flush the hot set.
//!
//! # Validity contract
//!
//! Every cached row carries the feature epoch it was computed at. A
//! lookup pinned to epoch `E` is a hit only when the entry's stamp `e`
//! satisfies all of:
//!
//! 1. `e <= E` — never serve a row newer than the reader's pinned
//!    snapshot (bit-identity with an uncached engine requires serving
//!    exactly the pinned epoch);
//! 2. `e >= flush_epoch` — no publish landed after the row was
//!    computed;
//! 3. `e >= last_touch[node]` — no delta update touched this row's
//!    dependency set after it was computed.
//!
//! All three are conservative: a stale-looking entry is recomputed, a
//! valid-looking entry is provably identical to a fresh computation.
//! The writer-side ordering that makes (2) and (3) race-free is owned
//! by the feature store: it announces an epoch to invalidation
//! listeners **before** any reader can pin it, so there is no window in
//! which a reader at the new epoch can hit a not-yet-retired entry.
//!
//! # Miss coalescing
//!
//! Concurrent requests that miss on the *same* vertex used to each
//! compute the row. [`ResultCache::route_miss`] closes that gap with
//! in-flight entry states: the first miss in a validity window becomes
//! the **owner** (it computes the row and resolves the registration
//! with [`ResultCache::fill`]), later misses become **waiters**
//! ([`cache::RowWaiter`]) back-filled when the owner's fill lands.
//! Coalescing applies the exact lookup validity predicate to the
//! in-flight registration's epoch stamp, so a waiter only ever receives
//! a row bit-identical to what it would have computed itself — and an
//! epoch bump that invalidates the vertex mid-flight makes later
//! requests re-compute instead of consuming the stale fill.

pub mod cache;
pub mod stats;

pub use cache::{CacheConfig, FillAborted, InflightOwner, MissRoute, ResultCache, RowWaiter};
pub use stats::{CacheMetrics, CacheStats};
