//! The sharded, epoch-aware result cache (see the crate docs for the
//! validity contract).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

use parking_lot::Mutex;

use crate::stats::{CacheMetrics, CacheStats};

/// Approximate fixed per-entry overhead (map slot, ring slot, box
/// header) charged against the byte budget on top of the row payload.
const ENTRY_OVERHEAD: usize = 80;

/// Tuning knobs for a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total byte budget across all segments (payload + bookkeeping
    /// overhead). At least one row per segment is always admitted.
    pub byte_budget: usize,
    /// Number of lock stripes. More segments mean less contention;
    /// each holds `byte_budget / segments` bytes.
    pub segments: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { byte_budget: 64 << 20, segments: 16 }
    }
}

impl CacheConfig {
    /// A config with `mb` mebibytes of budget and the default striping.
    pub fn with_mb(mb: usize) -> Self {
        CacheConfig { byte_budget: mb << 20, ..CacheConfig::default() }
    }
}

struct Entry {
    /// Feature epoch the row was computed at.
    epoch: u64,
    /// CLOCK second-chance bit, set on every hit.
    referenced: bool,
    data: Box<[f32]>,
}

/// Deferred stat deltas from a lock-held insert.
#[derive(Default)]
struct InsertStats {
    /// The row was admitted (fresh or refresh); stale rows are refused.
    inserted: bool,
    /// A new entry was created (refreshes keep the footprint).
    grew: bool,
    /// Entries retired by CLOCK eviction to make room.
    evicted: u64,
}

/// Waiters removed from a resolved in-flight registration.
#[derive(Default)]
struct TakenWaiters {
    cells: Vec<Arc<FillCell>>,
    /// False when the registration was already resolved (double
    /// fill/abort is a no-op, and must not unbalance the gauge).
    resolved: bool,
}

/// One in-flight row computation another request may coalesce onto.
struct Inflight {
    /// The owner's pinned epoch — the stamp the fill will carry.
    epoch: u64,
    /// Unique registration id, so an owner's completion can never
    /// resolve a different registration for the same node.
    token: u64,
    /// Waiters to back-fill when the owner completes.
    waiters: Vec<Arc<FillCell>>,
}

#[derive(Default)]
struct Segment {
    map: HashMap<usize, Entry>,
    /// CLOCK ring of node ids. Invalidation removes from `map` only;
    /// orphaned ring slots are reclaimed lazily when the hand passes.
    ring: Vec<usize>,
    hand: usize,
    /// In-flight computations keyed by node. Usually zero or one entry
    /// per node; a second appears only when an epoch bump invalidated
    /// the first mid-flight (the stale one then completes waiter-less).
    inflight: HashMap<usize, Vec<Inflight>>,
}

impl Segment {
    /// Retire one resident entry CLOCK-style: referenced entries get a
    /// second chance (bit cleared, hand advances), unreferenced ones
    /// are evicted. Returns false only when the segment is empty.
    fn evict_one(&mut self) -> bool {
        // Two full sweeps clear every second-chance bit; the bound
        // guards against a ring of orphaned slots shrinking under us.
        let mut steps = 2 * self.ring.len() + 2;
        while !self.ring.is_empty() && steps > 0 {
            steps -= 1;
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let node = self.ring[self.hand];
            match self.map.get_mut(&node) {
                // Orphan (already invalidated): reclaim the slot; the
                // swapped-in id is inspected next, so don't advance.
                None => {
                    self.ring.swap_remove(self.hand);
                }
                Some(e) if e.referenced => {
                    e.referenced = false;
                    self.hand += 1;
                }
                Some(_) => {
                    self.map.remove(&node);
                    self.ring.swap_remove(self.hand);
                    return true;
                }
            }
        }
        // Degenerate fallback (can only trigger if the sweep bound was
        // consumed by orphans): evict whatever the hand rests on.
        if let Some(&node) = self.ring.first() {
            self.map.remove(&node);
            self.ring.swap_remove(0);
            return true;
        }
        false
    }
}

/// How a cache miss should be computed, decided by
/// [`ResultCache::route_miss`]: either the caller owns the computation,
/// or it coalesces onto an in-flight one.
#[must_use = "an Owner registration must be resolved with fill/abort or waiters hang"]
pub enum MissRoute {
    /// First miss in this validity window: the caller computes the row
    /// and must resolve the registration with [`ResultCache::fill`]
    /// (or [`ResultCache::abort`] on failure).
    Owner(InflightOwner),
    /// An equivalent computation is already in flight — the fill the
    /// owner produces is bit-identical to what this caller would
    /// compute at its own pinned epoch. Wait on the handle instead of
    /// computing.
    Waiter(RowWaiter),
    /// A concurrent fill landed between the caller's lookup miss and
    /// this routing call: the row is already resident and valid at the
    /// caller's pinned epoch — here it is, nothing to compute or wait
    /// for.
    Resident(Box<[f32]>),
}

/// Owner-side handle of one in-flight row computation, returned by
/// [`ResultCache::route_miss`]. Must be resolved with
/// [`ResultCache::fill`] or [`ResultCache::abort`]; an unresolved
/// registration leaves its waiters blocked until their deadline.
#[derive(Debug)]
pub struct InflightOwner {
    node: usize,
    epoch: u64,
    token: u64,
}

impl InflightOwner {
    /// The node whose row this registration computes.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The pinned epoch the fill will be stamped with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// The owner of a coalesced computation gave up (engine shutdown)
/// before producing the row; the waiter must fail or recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillAborted;

impl std::fmt::Display for FillAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the in-flight computation this request coalesced onto was aborted")
    }
}

impl std::error::Error for FillAborted {}

/// One coalesced waiter's resolution cell: a mutex/condvar pair the
/// owner's fill (or abort) resolves exactly once. Unlike a channel it
/// supports **wakeup subscription** — a harvest waiting on many
/// sources registers a callback and parks once instead of polling.
struct FillCell {
    state: StdMutex<CellState>,
    cv: Condvar,
}

#[derive(Default)]
struct CellState {
    value: Option<Result<Box<[f32]>, FillAborted>>,
    watchers: Vec<Arc<dyn Fn() + Send + Sync>>,
}

impl FillCell {
    fn new() -> Arc<FillCell> {
        Arc::new(FillCell { state: StdMutex::new(CellState::default()), cv: Condvar::new() })
    }

    /// Resolve once (later calls are no-ops), wake blocked waiters, and
    /// fire subscribed watchers — outside the lock, so a watcher may
    /// take unrelated locks without ordering risk.
    fn resolve(&self, value: Result<Box<[f32]>, FillAborted>) {
        let watchers = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.value.is_some() {
                return;
            }
            st.value = Some(value);
            std::mem::take(&mut st.watchers)
        };
        self.cv.notify_all();
        for w in watchers {
            w();
        }
    }

    /// Take the resolution if present. A consumed cell keeps reporting
    /// `FillAborted`, matching the disconnected-channel semantics the
    /// waiter had when it was mpsc-based.
    fn take_locked(st: &mut CellState) -> Option<Result<Box<[f32]>, FillAborted>> {
        if st.value.is_some() {
            st.value.replace(Err(FillAborted))
        } else {
            None
        }
    }
}

/// Waiter-side handle of a coalesced miss: resolves with the computed
/// row when the owning request's fill lands. Blocking waits park on a
/// condvar (no poll cadence); [`RowWaiter::subscribe`] registers a
/// wakeup callback for multi-source waiting.
pub struct RowWaiter {
    cell: Arc<FillCell>,
}

impl std::fmt::Debug for RowWaiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowWaiter").finish_non_exhaustive()
    }
}

impl RowWaiter {
    /// Non-blocking probe: `Some(Ok(row))` once filled, `Some(Err(_))`
    /// when the owner aborted, `None` while still in flight.
    pub fn poll(&self) -> Option<Result<Box<[f32]>, FillAborted>> {
        let mut st = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
        FillCell::take_locked(&mut st)
    }

    /// Park until the fill lands (or the owner aborts).
    pub fn wait(&self) -> Result<Box<[f32]>, FillAborted> {
        let mut st = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = FillCell::take_locked(&mut st) {
                return v;
            }
            st = self.cell.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Park until the fill lands, the owner aborts, or `deadline`
    /// passes (`None` on timeout; the handle stays usable). Deadline
    /// precision comes from the condvar timeout, not a poll loop.
    pub fn wait_deadline(&self, deadline: Instant) -> Option<Result<Box<[f32]>, FillAborted>> {
        let mut st = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = FillCell::take_locked(&mut st) {
                return Some(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) =
                self.cell.cv.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Register a wakeup callback: fired once when the cell resolves
    /// (fill or abort) — immediately, if it already has.
    pub fn subscribe(&self, watcher: Arc<dyn Fn() + Send + Sync>) {
        let fire_now = {
            let mut st = self.cell.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.value.is_some() {
                true
            } else {
                st.watchers.push(watcher.clone());
                false
            }
        };
        if fire_now {
            watcher();
        }
    }
}

/// A sharded, lock-striped, epoch-aware cache of computed embedding
/// rows. See the crate docs for the validity contract; see
/// [`CacheConfig`] for sizing.
pub struct ResultCache {
    segments: Vec<Mutex<Segment>>,
    /// Per-segment resident-entry cap derived from the byte budget.
    seg_cap: usize,
    d: usize,
    nvertices: usize,
    row_bytes: usize,
    /// Entries stamped before this epoch are stale (publish floor).
    flush_epoch: AtomicU64,
    /// Per-vertex delta floor: the newest epoch whose delta update
    /// touched this row's dependency set. Entries stamped before it
    /// are stale.
    last_touch: Vec<AtomicU64>,
    /// Monotonic id minting [`InflightOwner`] tokens.
    next_token: AtomicU64,
    stats: CacheStats,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("nvertices", &self.nvertices)
            .field("d", &self.d)
            .field("segments", &self.segments.len())
            .field("seg_cap", &self.seg_cap)
            .field("flush_epoch", &self.flush_epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ResultCache {
    /// A cache over output rows of a graph with `nvertices` rows at
    /// embedding dimension `d`.
    ///
    /// # Panics
    /// Panics when `d == 0` or `config.segments == 0`.
    pub fn new(nvertices: usize, d: usize, config: CacheConfig) -> ResultCache {
        assert!(d > 0, "cannot cache zero-dimensional rows");
        assert!(config.segments > 0, "cache needs at least one segment");
        let row_bytes = 4 * d + ENTRY_OVERHEAD;
        // At least one row per segment so a tiny budget still caches.
        let seg_cap = (config.byte_budget / config.segments / row_bytes).max(1);
        ResultCache {
            segments: (0..config.segments).map(|_| Mutex::new(Segment::default())).collect(),
            seg_cap,
            d,
            nvertices,
            row_bytes,
            flush_epoch: AtomicU64::new(0),
            last_touch: (0..nvertices).map(|_| AtomicU64::new(0)).collect(),
            next_token: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// The embedding dimension of cached rows.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The vertex-id space this cache covers.
    pub fn nvertices(&self) -> usize {
        self.nvertices
    }

    /// Resident-row capacity (entries, not bytes) across all segments.
    pub fn capacity_rows(&self) -> usize {
        self.seg_cap * self.segments.len()
    }

    /// Number of lock stripes (fault injection targets one by index).
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// The lock stripe `node`'s entry lives in.
    pub fn segment_of(&self, node: usize) -> usize {
        node % self.segments.len()
    }

    fn segment(&self, node: usize) -> &Mutex<Segment> {
        &self.segments[self.segment_of(node)]
    }

    fn valid(&self, node: usize, stamp: u64, pinned: u64) -> bool {
        stamp <= pinned
            && stamp >= self.flush_epoch.load(Ordering::Acquire)
            && stamp >= self.last_touch[node].load(Ordering::Acquire)
    }

    /// Copy the cached row for `node`, valid at pinned epoch `pinned`,
    /// into `out`. Returns false (and drops a stale entry, if any) on a
    /// miss. Counts one hit or miss.
    ///
    /// # Panics
    /// Panics when `node >= nvertices` or `out.len() != d`.
    pub fn lookup(&self, node: usize, pinned: u64, out: &mut [f32]) -> bool {
        assert!(node < self.nvertices, "node {node} outside cache range {}", self.nvertices);
        assert_eq!(out.len(), self.d, "output slice must hold one row");
        #[derive(PartialEq)]
        enum Verdict {
            Hit,
            /// Absent, or newer than this reader's pin (an old snapshot
            /// racing a fresher insert) — the entry, if any, is kept.
            Miss,
            /// Provably stale for every future reader: reclaim now.
            StaleDrop,
        }
        let mut seg = self.segment(node).lock();
        let verdict = match seg.map.get_mut(&node) {
            Some(e) if self.valid(node, e.epoch, pinned) => {
                e.referenced = true;
                out.copy_from_slice(&e.data);
                Verdict::Hit
            }
            Some(e)
                if e.epoch < self.flush_epoch.load(Ordering::Acquire)
                    || e.epoch < self.last_touch[node].load(Ordering::Acquire) =>
            {
                Verdict::StaleDrop
            }
            _ => Verdict::Miss,
        };
        if verdict == Verdict::StaleDrop {
            seg.map.remove(&node);
        }
        drop(seg);
        match verdict {
            Verdict::Hit => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            Verdict::Miss => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
            Verdict::StaleDrop => {
                self.stats.entries.fetch_sub(1, Ordering::Relaxed);
                self.stats.bytes.fetch_sub(self.row_bytes, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Insert (or refresh) the row for `node` computed at `epoch`,
    /// evicting CLOCK-style under budget pressure. Rows already known
    /// stale (an invalidation for a newer epoch landed first) are not
    /// admitted — that is what makes a concurrent
    /// compute-from-old-epoch / delta-update race safe.
    ///
    /// # Panics
    /// Panics when `node >= nvertices` or `row.len() != d`.
    pub fn insert(&self, node: usize, epoch: u64, row: &[f32]) {
        assert!(node < self.nvertices, "node {node} outside cache range {}", self.nvertices);
        assert_eq!(row.len(), self.d, "row slice must hold one row");
        let mut seg = self.segment(node).lock();
        let outcome = self.insert_locked(&mut seg, node, epoch, row);
        drop(seg);
        self.apply_insert_stats(outcome);
    }

    /// The insert body, run under the caller-held segment lock, with
    /// stat deltas deferred (atomics are not touched while locked).
    fn insert_locked(
        &self,
        seg: &mut Segment,
        node: usize,
        epoch: u64,
        row: &[f32],
    ) -> InsertStats {
        let mut outcome = InsertStats::default();
        if epoch < self.flush_epoch.load(Ordering::Acquire)
            || epoch < self.last_touch[node].load(Ordering::Acquire)
        {
            return outcome;
        }
        if let Some(e) = seg.map.get_mut(&node) {
            // A straggler's older row never downgrades a newer entry —
            // and a refused refresh is not an insert.
            if epoch < e.epoch {
                return outcome;
            }
            e.epoch = epoch;
            e.referenced = true;
            e.data.copy_from_slice(row);
        } else {
            while seg.map.len() >= self.seg_cap {
                if !seg.evict_one() {
                    break;
                }
                outcome.evicted += 1;
            }
            seg.map.insert(node, Entry { epoch, referenced: false, data: row.into() });
            seg.ring.push(node);
            outcome.grew = true;
        }
        outcome.inserted = true;
        outcome
    }

    fn apply_insert_stats(&self, outcome: InsertStats) {
        if outcome.grew {
            self.stats.entries.fetch_add(1, Ordering::Relaxed);
            self.stats.bytes.fetch_add(self.row_bytes, Ordering::Relaxed);
        }
        if outcome.evicted > 0 {
            self.stats.evictions.fetch_add(outcome.evicted, Ordering::Relaxed);
            self.stats.entries.fetch_sub(outcome.evicted as usize, Ordering::Relaxed);
            self.stats
                .bytes
                .fetch_sub(outcome.evicted as usize * self.row_bytes, Ordering::Relaxed);
        }
        if outcome.inserted {
            self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Route a cache miss: either the caller becomes the **owner** of
    /// the row computation (first miss in this validity window — it
    /// must resolve the registration with [`ResultCache::fill`] or
    /// [`ResultCache::abort`]), or it **coalesces** onto an in-flight
    /// computation whose fill is provably bit-identical to what the
    /// caller would compute at `pinned`, or — when a concurrent fill
    /// landed between the caller's lookup miss and this call — the row
    /// is already **resident** and returned directly. The
    /// resident/in-flight/owner decision is atomic under the segment
    /// lock ([`ResultCache::fill`] resolves under the same lock), so a
    /// row is never computed twice within one validity window.
    ///
    /// Coalescing applies the same validity predicate as a lookup: a
    /// waiter pinned to `pinned` attaches to an in-flight registration
    /// stamped `e` only when `e <= pinned` and no publish or
    /// delta-touch of `node` landed after `e` — under exactly those
    /// conditions the row at epoch `e` equals the row at `pinned`
    /// bit-for-bit. An epoch bump that invalidates `node` mid-flight
    /// therefore makes later requests *re-compute* (they register a
    /// fresh owner) instead of consuming the stale fill.
    ///
    /// # Panics
    /// Panics when `node >= nvertices`.
    pub fn route_miss(&self, node: usize, pinned: u64) -> MissRoute {
        assert!(node < self.nvertices, "node {node} outside cache range {}", self.nvertices);
        let mut seg = self.segment(node).lock();
        // A fill may have landed since the caller's lookup missed:
        // serve it rather than re-registering an owner (counted as a
        // late hit — the preceding lookup already counted the miss).
        if let Some(e) = seg.map.get_mut(&node) {
            if self.valid(node, e.epoch, pinned) {
                e.referenced = true;
                let row = e.data.clone();
                drop(seg);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.late_hits.fetch_add(1, Ordering::Relaxed);
                return MissRoute::Resident(row);
            }
        }
        if let Some(entries) = seg.inflight.get_mut(&node) {
            if let Some(e) = entries.iter_mut().find(|e| self.valid(node, e.epoch, pinned)) {
                let cell = FillCell::new();
                e.waiters.push(Arc::clone(&cell));
                drop(seg);
                self.stats.coalesced_misses.fetch_add(1, Ordering::Relaxed);
                return MissRoute::Waiter(RowWaiter { cell });
            }
        }
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        seg.inflight.entry(node).or_default().push(Inflight {
            epoch: pinned,
            token,
            waiters: Vec::new(),
        });
        drop(seg);
        self.stats.inflight.inc();
        MissRoute::Owner(InflightOwner { node, epoch: pinned, token })
    }

    /// Complete an in-flight registration: back-fill every coalesced
    /// waiter with `row` and insert it into the cache (subject to the
    /// usual staleness refusal — a fill raced by an invalidation still
    /// serves its registered waiters, whose pinned epochs pre-date the
    /// invalidation, but is not admitted as a cache entry). The
    /// registration removal and the insert happen under one segment
    /// lock acquisition, so a concurrent [`ResultCache::route_miss`]
    /// observes either "in flight" or "resident" — never the gap in
    /// between (which would make it recompute the row).
    ///
    /// # Panics
    /// Panics when `row.len() != d`.
    pub fn fill(&self, owner: InflightOwner, row: &[f32]) {
        assert_eq!(row.len(), self.d, "row slice must hold one row");
        let mut seg = self.segment(owner.node).lock();
        let waiters = Self::take_inflight_locked(&mut seg, &owner);
        let outcome = self.insert_locked(&mut seg, owner.node, owner.epoch, row);
        drop(seg);
        // Waiter cells resolve after the segment lock drops: the
        // registration removal and the insert already happened
        // atomically above, and a subscribed watcher must be free to
        // take unrelated locks.
        for cell in &waiters.cells {
            cell.resolve(Ok(row.into()));
        }
        if waiters.resolved {
            self.stats.inflight.dec();
        }
        self.apply_insert_stats(outcome);
    }

    /// Abandon an in-flight registration (the owning request failed,
    /// e.g. on engine shutdown): waiters observe the abort and fail or
    /// recompute; nothing is inserted.
    pub fn abort(&self, owner: InflightOwner) {
        let mut seg = self.segment(owner.node).lock();
        let waiters = Self::take_inflight_locked(&mut seg, &owner);
        drop(seg);
        for cell in &waiters.cells {
            cell.resolve(Err(FillAborted));
        }
        if waiters.resolved {
            self.stats.inflight.dec();
        }
    }

    /// Remove `owner`'s registration under the caller-held lock,
    /// returning its waiters (gauge update deferred to the caller).
    fn take_inflight_locked(seg: &mut Segment, owner: &InflightOwner) -> TakenWaiters {
        let Some(entries) = seg.inflight.get_mut(&owner.node) else {
            return TakenWaiters::default();
        };
        let Some(pos) = entries.iter().position(|e| e.token == owner.token) else {
            return TakenWaiters::default();
        };
        let entry = entries.swap_remove(pos);
        if entries.is_empty() {
            seg.inflight.remove(&owner.node);
        }
        TakenWaiters { cells: entry.waiters, resolved: true }
    }

    /// A publish minted `epoch`: lazily invalidate every entry stamped
    /// earlier (O(1) — the stamp comparison at lookup does the work).
    /// Must be called before any reader can pin `epoch`.
    pub fn invalidate_all(&self, epoch: u64) {
        self.flush_epoch.fetch_max(epoch, Ordering::AcqRel);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// A delta update minted `epoch` with dependency touch set `rows`
    /// (the patched vertices and their in-neighbors): precisely retire
    /// exactly those rows — resident entries are dropped eagerly, and
    /// the per-vertex floor blocks stale re-inserts racing this call.
    /// Ids outside the cache's vertex range are ignored (a rectangular
    /// graph may patch Y rows beyond the output row space). Must be
    /// called before any reader can pin `epoch`.
    pub fn invalidate_rows(&self, epoch: u64, rows: &[usize]) {
        let mut dropped = 0usize;
        for &node in rows {
            if node >= self.nvertices {
                continue;
            }
            self.last_touch[node].fetch_max(epoch, Ordering::AcqRel);
            let mut seg = self.segment(node).lock();
            if seg.map.remove(&node).is_some() {
                dropped += 1;
            }
        }
        if dropped > 0 {
            self.stats.invalidated_rows.fetch_add(dropped as u64, Ordering::Relaxed);
            self.stats.entries.fetch_sub(dropped, Ordering::Relaxed);
            self.stats.bytes.fetch_sub(dropped * self.row_bytes, Ordering::Relaxed);
        }
    }

    /// Record one request-level observation for the hit-ratio
    /// histogram: `hits` of `rows` requested rows came from the cache.
    pub fn record_request(&self, hits: u64, rows: u64) {
        self.stats.hit_ratio.record_fraction(hits, rows);
    }

    /// Point-in-time statistics.
    pub fn metrics(&self) -> CacheMetrics {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(d: usize, v: f32) -> Vec<f32> {
        vec![v; d]
    }

    fn tiny(nvertices: usize, d: usize, rows_budget: usize) -> ResultCache {
        // One segment so capacity is exact and eviction deterministic.
        let row_bytes = 4 * d + ENTRY_OVERHEAD;
        ResultCache::new(
            nvertices,
            d,
            CacheConfig { byte_budget: rows_budget * row_bytes, segments: 1 },
        )
    }

    #[test]
    fn roundtrip_hit_and_absent_miss() {
        let c = ResultCache::new(10, 4, CacheConfig::default());
        let mut out = row(4, 0.0);
        assert!(!c.lookup(3, 0, &mut out));
        c.insert(3, 0, &row(4, 1.5));
        assert!(c.lookup(3, 0, &mut out));
        assert_eq!(out, row(4, 1.5));
        let m = c.metrics();
        assert_eq!((m.hits, m.misses, m.inserts, m.entries), (1, 1, 1, 1));
        assert!(m.bytes > 0);
    }

    #[test]
    fn publish_invalidates_everything_lazily() {
        let c = ResultCache::new(4, 2, CacheConfig::default());
        c.insert(0, 0, &row(2, 1.0));
        c.insert(1, 0, &row(2, 2.0));
        c.invalidate_all(1);
        let mut out = row(2, 0.0);
        assert!(!c.lookup(0, 1, &mut out), "pre-publish entry is stale");
        assert!(!c.lookup(1, 1, &mut out));
        // Fresh rows at the new epoch hit again.
        c.insert(0, 1, &row(2, 3.0));
        assert!(c.lookup(0, 1, &mut out));
        assert_eq!(out, row(2, 3.0));
        assert_eq!(c.metrics().flushes, 1);
    }

    #[test]
    fn delta_invalidation_is_precise() {
        let c = ResultCache::new(6, 2, CacheConfig::default());
        for u in 0..6 {
            c.insert(u, 0, &row(2, u as f32));
        }
        // Delta at epoch 1 touches {1, 4}: only those rows retire.
        c.invalidate_rows(1, &[1, 4]);
        let mut out = row(2, 0.0);
        for u in [0usize, 2, 3, 5] {
            assert!(c.lookup(u, 1, &mut out), "untouched row {u} survives the delta");
            assert_eq!(out, row(2, u as f32));
        }
        assert!(!c.lookup(1, 1, &mut out));
        assert!(!c.lookup(4, 1, &mut out));
        let m = c.metrics();
        assert_eq!(m.invalidated_rows, 2);
        assert_eq!(m.entries, 4);
    }

    #[test]
    fn stale_reinsert_after_delta_is_rejected() {
        let c = ResultCache::new(4, 2, CacheConfig::default());
        // Reader computed node 2's row at epoch 0; before it could
        // insert, a delta touching node 2 minted epoch 1.
        c.invalidate_rows(1, &[2]);
        c.insert(2, 0, &row(2, 9.0));
        let mut out = row(2, 0.0);
        assert!(!c.lookup(2, 1, &mut out), "stale row from before the delta must not serve");
        // The epoch-1 recompute is admitted.
        c.insert(2, 1, &row(2, 10.0));
        assert!(c.lookup(2, 1, &mut out));
        assert_eq!(out, row(2, 10.0));
    }

    #[test]
    fn old_reader_never_sees_a_newer_row() {
        let c = ResultCache::new(4, 2, CacheConfig::default());
        c.insert(1, 5, &row(2, 5.0));
        let mut out = row(2, 0.0);
        // A reader still pinned to epoch 3 must recompute, not read
        // the epoch-5 row — and the newer entry must survive.
        assert!(!c.lookup(1, 3, &mut out));
        assert!(c.lookup(1, 5, &mut out));
        assert_eq!(out, row(2, 5.0));
    }

    #[test]
    fn clock_eviction_respects_budget_and_second_chance() {
        let c = tiny(100, 4, 3);
        assert_eq!(c.capacity_rows(), 3);
        c.insert(0, 0, &row(4, 0.0));
        c.insert(1, 0, &row(4, 1.0));
        c.insert(2, 0, &row(4, 2.0));
        // Touch node 0 so its second-chance bit protects it.
        let mut out = row(4, 0.0);
        assert!(c.lookup(0, 0, &mut out));
        // Inserting a fourth row must evict an *unreferenced* one.
        c.insert(3, 0, &row(4, 3.0));
        let m = c.metrics();
        assert_eq!(m.entries, 3);
        assert_eq!(m.evictions, 1);
        assert!(c.lookup(0, 0, &mut out), "recently-hit row survives the clock");
        assert!(c.lookup(3, 0, &mut out), "new row is resident");
    }

    #[test]
    fn eviction_reclaims_orphaned_ring_slots() {
        let c = tiny(100, 4, 2);
        c.insert(0, 0, &row(4, 0.0));
        c.insert(1, 0, &row(4, 1.0));
        // Invalidate both (orphaning their ring slots), then fill the
        // cache again — the clock must reclaim orphans, not spin.
        c.invalidate_rows(1, &[0, 1]);
        c.insert(2, 1, &row(4, 2.0));
        c.insert(3, 1, &row(4, 3.0));
        c.insert(4, 1, &row(4, 4.0));
        let mut out = row(4, 0.0);
        assert!(c.lookup(4, 1, &mut out));
        assert_eq!(c.metrics().entries, 2);
    }

    #[test]
    fn refresh_overwrites_in_place_without_growth() {
        let c = tiny(10, 2, 4);
        c.insert(7, 0, &row(2, 1.0));
        c.insert(7, 2, &row(2, 2.0));
        // An older stamp never downgrades a newer entry.
        c.insert(7, 1, &row(2, 9.0));
        let mut out = row(2, 0.0);
        assert!(c.lookup(7, 2, &mut out));
        assert_eq!(out, row(2, 2.0));
        let m = c.metrics();
        assert_eq!(m.entries, 1);
        assert_eq!(m.inserts, 2, "the refused stale refresh is not counted as an insert");
    }

    #[test]
    fn second_miss_coalesces_and_is_backfilled() {
        let c = ResultCache::new(8, 2, CacheConfig::default());
        let MissRoute::Owner(owner) = c.route_miss(3, 0) else {
            panic!("first miss must own the computation");
        };
        let MissRoute::Waiter(w1) = c.route_miss(3, 0) else {
            panic!("second miss must coalesce");
        };
        let MissRoute::Waiter(w2) = c.route_miss(3, 0) else {
            panic!("third miss must coalesce too");
        };
        assert!(w1.poll().is_none(), "nothing filled yet");
        c.fill(owner, &row(2, 7.0));
        assert_eq!(w1.wait().unwrap().as_ref(), &[7.0, 7.0]);
        assert_eq!(w2.poll().unwrap().unwrap().as_ref(), &[7.0, 7.0]);
        // The fill also landed as a cache entry.
        let mut out = row(2, 0.0);
        assert!(c.lookup(3, 0, &mut out));
        assert_eq!(out, row(2, 7.0));
        let m = c.metrics();
        assert_eq!(m.coalesced_misses, 2);
        assert_eq!(m.inflight_rows, 0, "registration resolved");
        assert_eq!(m.inflight_peak_rows, 1);
    }

    #[test]
    fn coalescing_spans_epochs_only_while_valid() {
        let c = ResultCache::new(8, 2, CacheConfig::default());
        let MissRoute::Owner(owner) = c.route_miss(5, 0) else { panic!("owner") };
        // A reader pinned to a *newer* epoch with no invalidating write
        // in between coalesces: the epoch-0 row equals the epoch-2 row.
        let MissRoute::Waiter(w) = c.route_miss(5, 2) else {
            panic!("valid newer pin must coalesce")
        };
        // A delta touching node 5 mints epoch 3: readers at the new
        // epoch must re-compute, not consume the stale fill.
        c.invalidate_rows(3, &[5]);
        let MissRoute::Owner(owner2) = c.route_miss(5, 3) else {
            panic!("post-invalidation miss must re-compute")
        };
        c.fill(owner, &row(2, 1.0));
        assert_eq!(w.wait().unwrap().as_ref(), &[1.0, 1.0], "pre-bump waiter still served");
        // The stale fill was refused as a cache entry...
        let mut out = row(2, 0.0);
        assert!(!c.lookup(5, 3, &mut out));
        // ...while the re-computed one is admitted.
        c.fill(owner2, &row(2, 2.0));
        assert!(c.lookup(5, 3, &mut out));
        assert_eq!(out, row(2, 2.0));
        assert_eq!(c.metrics().inflight_rows, 0);
    }

    #[test]
    fn route_after_fill_is_resident_not_a_second_owner() {
        // The exactly-once race: a lookup misses, the in-flight fill
        // lands, then the routing call runs. It must return the
        // now-resident row, never register a second owner.
        let c = ResultCache::new(8, 2, CacheConfig::default());
        let MissRoute::Owner(owner) = c.route_miss(6, 0) else { panic!("owner") };
        c.fill(owner, &row(2, 9.0));
        match c.route_miss(6, 0) {
            MissRoute::Resident(r) => assert_eq!(r.as_ref(), &[9.0, 9.0]),
            _ => panic!("post-fill route must find the resident row"),
        }
        let m = c.metrics();
        assert_eq!(m.hits, 1, "the resident route counts as a late hit");
        assert_eq!(m.inflight_rows, 0);
        // A stale resident row (invalidated since) is not served.
        c.invalidate_rows(1, &[6]);
        match c.route_miss(6, 1) {
            MissRoute::Owner(o) => c.abort(o),
            _ => panic!("invalidated resident row must not be served"),
        }
    }

    #[test]
    fn abort_disconnects_waiters() {
        let c = ResultCache::new(4, 2, CacheConfig::default());
        let MissRoute::Owner(owner) = c.route_miss(1, 0) else { panic!("owner") };
        let MissRoute::Waiter(w) = c.route_miss(1, 0) else { panic!("waiter") };
        c.abort(owner);
        assert_eq!(w.poll(), Some(Err(FillAborted)));
        let mut out = row(2, 0.0);
        assert!(!c.lookup(1, 0, &mut out), "aborted computation inserted nothing");
        assert_eq!(c.metrics().inflight_rows, 0);
    }

    #[test]
    fn wait_deadline_times_out_then_resolves() {
        let c = std::sync::Arc::new(ResultCache::new(4, 2, CacheConfig::default()));
        let MissRoute::Owner(owner) = c.route_miss(2, 0) else { panic!("owner") };
        let MissRoute::Waiter(w) = c.route_miss(2, 0) else { panic!("waiter") };
        let deadline = Instant::now() + std::time::Duration::from_millis(5);
        assert_eq!(w.wait_deadline(deadline), None, "no fill before the deadline");
        c.fill(owner, &row(2, 4.0));
        let far = Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(w.wait_deadline(far).unwrap().unwrap().as_ref(), &[4.0, 4.0]);
    }

    #[test]
    fn subscribed_watcher_fires_on_fill_and_immediately_when_late() {
        use std::sync::atomic::AtomicUsize;
        let c = ResultCache::new(4, 2, CacheConfig::default());
        let MissRoute::Owner(owner) = c.route_miss(3, 0) else { panic!("owner") };
        let MissRoute::Waiter(w) = c.route_miss(3, 0) else { panic!("waiter") };
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        w.subscribe(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 0, "nothing resolved yet");
        c.fill(owner, &row(2, 6.0));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "watcher fired on fill");
        // Subscribing after resolution fires at once.
        let f = Arc::clone(&fired);
        w.subscribe(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        assert_eq!(w.poll().unwrap().unwrap().as_ref(), &[6.0, 6.0]);
    }

    #[test]
    fn concurrent_mixed_traffic_stays_consistent() {
        let c = std::sync::Arc::new(ResultCache::new(
            64,
            8,
            CacheConfig { byte_budget: 40 * (4 * 8 + ENTRY_OVERHEAD), segments: 4 },
        ));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    let mut out = vec![0f32; 8];
                    for i in 0..500u64 {
                        let node = ((t * 17 + i * 7) % 64) as usize;
                        let epoch = i / 100;
                        if i % 50 == 0 {
                            c.invalidate_rows(epoch, &[node]);
                        }
                        if c.lookup(node, epoch, &mut out) {
                            // A hit must carry a full row (value is
                            // whatever epoch wrote it; shape must hold).
                            assert_eq!(out.len(), 8);
                        } else {
                            c.insert(node, epoch, &[epoch as f32; 8]);
                        }
                    }
                });
            }
        });
        let m = c.metrics();
        assert_eq!(m.hits + m.misses, 2000);
        assert!(m.entries <= 40);
    }
}
