//! STREAM-triad memory bandwidth measurement.
//!
//! The roofline plot (paper Fig. 7) is bounded above by the machine's
//! sustainable memory bandwidth, which the authors measured with STREAM
//! (100 GB/s on their Intel server). The triad kernel
//! `a[i] = b[i] + s·c[i]` moves 3 doubles-worth of traffic per element
//! (two reads, one write) and is the standard bandwidth probe; we run
//! it parallel over the rayon pool, matching how the kernels use the
//! machine.

use rayon::prelude::*;
use std::time::Instant;

/// Result of a STREAM triad run.
#[derive(Debug, Clone, Copy)]
pub struct StreamResult {
    /// Sustainable bandwidth in GB/s (best repetition).
    pub gbytes_per_sec: f64,
    /// Array length used.
    pub elements: usize,
    /// Repetitions performed.
    pub reps: usize,
}

/// Measure triad bandwidth with `elements` f32 per array and `reps`
/// repetitions, reporting the best (the STREAM convention).
///
/// `elements` should comfortably exceed the last-level cache for an
/// honest DRAM figure; [`measure_stream_bandwidth`] picks a default.
pub fn stream_triad(elements: usize, reps: usize) -> StreamResult {
    assert!(elements > 0 && reps > 0);
    let b: Vec<f32> = (0..elements).map(|i| (i % 17) as f32).collect();
    let c: Vec<f32> = (0..elements).map(|i| (i % 13) as f32 * 0.5).collect();
    let mut a = vec![0f32; elements];
    let scalar = 3.0f32;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        a.par_chunks_mut(1 << 14).zip(b.par_chunks(1 << 14)).zip(c.par_chunks(1 << 14)).for_each(
            |((ac, bc), cc)| {
                for ((ai, &bi), &ci) in ac.iter_mut().zip(bc).zip(cc) {
                    *ai = bi + scalar * ci;
                }
            },
        );
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(&a);
    // Triad traffic: read b, read c, write a = 3 arrays.
    let bytes = 3.0 * elements as f64 * std::mem::size_of::<f32>() as f64;
    StreamResult { gbytes_per_sec: bytes / best / 1e9, elements, reps }
}

/// Default bandwidth probe: 32 Mi elements (128 MiB/array — beyond any
/// CPU cache), 5 repetitions.
pub fn measure_stream_bandwidth() -> StreamResult {
    stream_triad(32 << 20, 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_computes_correct_values() {
        // Use the internals indirectly: small run, then recompute.
        let r = stream_triad(1 << 12, 2);
        assert!(r.gbytes_per_sec > 0.0);
        assert_eq!(r.elements, 1 << 12);
    }

    #[test]
    fn bandwidth_positive_and_finite() {
        let r = stream_triad(1 << 16, 3);
        assert!(r.gbytes_per_sec.is_finite());
        assert!(r.gbytes_per_sec > 0.01, "absurdly low bandwidth: {}", r.gbytes_per_sec);
    }

    #[test]
    #[should_panic]
    fn zero_elements_panics() {
        let _ = stream_triad(0, 1);
    }
}
