//! The roofline model of FusedMM (paper §IV-C, Eq. 4 and Fig. 7).
//!
//! The paper bounds the kernel's arithmetic intensity as
//!
//! ```text
//! AI > (2dmδ + 2dmδ) / (12mδ + 8md + 4dmδ) = δ / (3δ/d + 2 + δ)
//! ```
//!
//! (`δ` = average degree, `d` = feature dimension), equivalently
//! `AI = (3/d + 2/δ + 1)⁻¹`, approaching 1 for dense graphs with large
//! `d` and bottoming at 1/6 for `δ = d = 1`. Since AI ≤ 1, FusedMM is
//! memory-bound for all realistic parameters and its attainable
//! performance is `bandwidth × AI`.

/// Eq. 4: the arithmetic-intensity bound for the embedding pattern.
pub fn arithmetic_intensity(d: usize, avg_degree: f64) -> f64 {
    assert!(d > 0, "dimension must be positive");
    assert!(avg_degree > 0.0, "average degree must be positive");
    1.0 / (3.0 / d as f64 + 2.0 / avg_degree + 1.0)
}

/// Attainable GFLOP/s on the bandwidth-bound roof:
/// `bandwidth (GB/s) × AI (flops/byte)`.
pub fn attainable_gflops(bandwidth_gbps: f64, ai: f64) -> f64 {
    assert!(bandwidth_gbps > 0.0 && ai > 0.0);
    bandwidth_gbps * ai
}

/// One point of the roofline plot: a graph's AI, attainable and
/// measured performance.
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    /// Graph name.
    pub name: String,
    /// Arithmetic intensity per Eq. 4.
    pub ai: f64,
    /// Bandwidth-bound attainable GFLOP/s.
    pub attainable: f64,
    /// Measured GFLOP/s.
    pub measured: f64,
}

impl RooflinePoint {
    /// Build a point from measured quantities.
    pub fn new(
        name: impl Into<String>,
        d: usize,
        avg_degree: f64,
        bandwidth_gbps: f64,
        measured_gflops: f64,
    ) -> Self {
        let ai = arithmetic_intensity(d, avg_degree);
        RooflinePoint {
            name: name.into(),
            ai,
            attainable: attainable_gflops(bandwidth_gbps, ai),
            measured: measured_gflops,
        }
    }

    /// Fraction of the attainable roof achieved.
    pub fn efficiency(&self) -> f64 {
        self.measured / self.attainable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq4_limits() {
        // Worst case from the paper: δ = 1, d = 1 → 1/6.
        assert!((arithmetic_intensity(1, 1.0) - 1.0 / 6.0).abs() < 1e-12);
        // Dense graphs with large d approach 1.
        assert!(arithmetic_intensity(1024, 1000.0) > 0.99);
    }

    #[test]
    fn paper_fig7_orkut_point() {
        // Fig. 7: Orkut (δ = 76.28) at d = 128 has AI ≈ 0.95 and, with a
        // 100 GB/s roof, attainable ≈ 95.27 GFLOP/s.
        let ai = arithmetic_intensity(128, 76.28);
        assert!((ai - 0.95).abs() < 0.01, "ai = {ai}");
        let att = attainable_gflops(100.0, ai);
        assert!((att - 95.27).abs() < 1.0, "attainable = {att}");
    }

    #[test]
    fn ai_monotone_in_both_parameters() {
        assert!(arithmetic_intensity(64, 10.0) < arithmetic_intensity(128, 10.0));
        assert!(arithmetic_intensity(64, 10.0) < arithmetic_intensity(64, 20.0));
    }

    #[test]
    fn ai_below_one_always() {
        for d in [1usize, 8, 128, 4096] {
            for deg in [1.0f64, 5.0, 100.0, 10_000.0] {
                assert!(arithmetic_intensity(d, deg) < 1.0);
            }
        }
    }

    #[test]
    fn efficiency_ratio() {
        let p = RooflinePoint::new("test", 128, 76.28, 100.0, 63.21);
        // Paper: 63.21 measured of 95.27 attainable ≈ 66%.
        assert!((p.efficiency() - 0.663).abs() < 0.01);
    }
}
