//! Low-overhead request-lifecycle tracing for the serving stack.
//!
//! A serving request crosses threads: admission happens on the caller
//! thread, batch formation and the kernel on the dispatcher thread
//! (one per shard), harvest on whoever polls the ticket. Aggregate
//! histograms cannot attribute a slow p99 to *which stage* of *which
//! request* stalled; spans can. [`Tracer`] provides them with a
//! recording hot path cheap enough to leave compiled in:
//!
//! * **Sampling first.** A root span is admitted 1-in-N
//!   ([`Tracer::sample_root`]); an unsampled request takes one relaxed
//!   `fetch_add` and no further work — every downstream span site is
//!   behind an `Option` that is `None`.
//! * **Per-thread lock-free rings.** A sampled span is recorded into
//!   the recording thread's own fixed-size ring buffer (registered
//!   lazily, one per thread per tracer), so recording threads never
//!   contend with each other. Each slot is a seqlock — the single
//!   writer bumps the slot's sequence to odd, stores the fields, bumps
//!   it back to even — so a concurrent dump skips torn slots instead
//!   of blocking the writer. Rings overwrite oldest-first; a dump is
//!   the last `capacity` spans per thread.
//! * **Monotonic timestamps.** [`Tracer::now`] is nanoseconds since
//!   the tracer's creation instant, so spans recorded on different
//!   threads order correctly.
//!
//! Spans carry a [`SpanCtx`] — trace id, span id, parent span id —
//! that is `Copy` and travels with the request through queues and
//! tickets. The emission points (batcher enqueue, dispatcher batch
//! formation, per-shard kernel launch, cache route/fill, ticket
//! harvest) are wired in `fusedmm-serve`; one coalesced batch records
//! its batch/kernel spans once per *sampled* request in the group, so
//! every sampled request owns a complete tree.
//!
//! [`Tracer::global`] reads the `FUSEDMM_TRACE` environment variable
//! (a sample rate in `(0, 1]`; unset or `0` disables tracing) once per
//! process; [`Tracer::chrome_json`] dumps everything recorded as a
//! chrome://tracing / Perfetto "complete event" array.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Where in the request lifecycle a span was emitted. A closed set
/// (rather than free-form names) keeps the recording slot a handful of
/// atomic words with no interning or unsafe string reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Root: one whole `embed_begin` → harvest request.
    Embed,
    /// Cache probe + miss routing (split, own/coalesce decisions).
    CacheRoute,
    /// Handing the request (or one shard's slice of it) to a batcher.
    Enqueue,
    /// Dispatcher batch formation: coalesce + dedup of one tick.
    Batch,
    /// The fused kernel launch computing the batch's row union.
    Kernel,
    /// Back-filling computed rows into the cache and its waiters.
    CacheFill,
    /// A harvest call that resolved the ticket.
    Harvest,
    /// One remote shard part's round trip: request frame sent →
    /// response frame resolved (multi-process serving).
    Rpc,
}

impl SpanKind {
    /// Stable lowercase label (used in dumps and docs).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Embed => "embed",
            SpanKind::CacheRoute => "cache_route",
            SpanKind::Enqueue => "enqueue",
            SpanKind::Batch => "batch",
            SpanKind::Kernel => "kernel",
            SpanKind::CacheFill => "cache_fill",
            SpanKind::Harvest => "harvest",
            SpanKind::Rpc => "rpc",
        }
    }

    fn from_u64(v: u64) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Embed,
            1 => SpanKind::CacheRoute,
            2 => SpanKind::Enqueue,
            3 => SpanKind::Batch,
            4 => SpanKind::Kernel,
            5 => SpanKind::CacheFill,
            6 => SpanKind::Harvest,
            7 => SpanKind::Rpc,
            _ => return None,
        })
    }
}

/// The identity a sampled span carries with it across threads: which
/// trace it belongs to, its own span id, and its parent's span id
/// (`0` for a root). Span ids are unique per tracer across all traces,
/// so a parent link can never resolve into another request's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// Trace (request) id, from 1.
    pub trace: u64,
    /// This span's id, from 1.
    pub span: u64,
    /// Parent span id; 0 when this is the trace root.
    pub parent: u64,
}

/// One recorded span, decoded out of a ring by [`Tracer::spans`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace (request) id.
    pub trace: u64,
    /// This span's unique id.
    pub span: u64,
    /// Parent span id; 0 for the root.
    pub parent: u64,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Start, nanoseconds since tracer creation.
    pub start_ns: u64,
    /// End, nanoseconds since tracer creation.
    pub end_ns: u64,
    /// Owning shard, when the stage is shard-specific.
    pub shard: Option<usize>,
    /// Rows touched at this stage (requested, batched, or computed).
    pub rows: u64,
    /// Index of the recording thread's ring (a stable per-thread tag).
    pub thread: usize,
}

const FIELDS: usize = 8;
const F_TRACE: usize = 0;
const F_SPAN: usize = 1;
const F_PARENT: usize = 2;
const F_KIND: usize = 3;
const F_START: usize = 4;
const F_END: usize = 5;
const F_SHARD: usize = 6; // shard + 1; 0 = none
const F_ROWS: usize = 7;

struct Slot {
    /// Seqlock: odd while the owner thread is writing; readers retry
    /// (skip) on odd or on a change across their field reads. Starts
    /// at 0 = never written.
    seq: AtomicU64,
    data: [AtomicU64; FIELDS],
}

impl Slot {
    fn new() -> Slot {
        Slot { seq: AtomicU64::new(0), data: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// One thread's span ring. Exactly one thread ever writes (the thread
/// that lazily registered it); any thread may snapshot.
struct SpanRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl SpanRing {
    fn new(capacity: usize) -> SpanRing {
        let cap = capacity.next_power_of_two().max(8);
        SpanRing { slots: (0..cap).map(|_| Slot::new()).collect(), head: AtomicU64::new(0) }
    }

    /// Owner-thread only.
    fn push(&self, vals: [u64; FIELDS]) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[h as usize & (self.slots.len() - 1)];
        let s = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(s + 1, Ordering::Release); // odd: write in progress
        for (d, v) in slot.data.iter().zip(vals) {
            d.store(v, Ordering::Release);
        }
        slot.seq.store(s + 2, Ordering::Release); // even: consistent
        self.head.store(h + 1, Ordering::Release);
    }

    /// Any thread; skips slots being overwritten right now.
    fn snapshot(&self, thread: usize, out: &mut Vec<SpanRecord>) {
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let mut vals = [0u64; FIELDS];
            for (v, d) in vals.iter_mut().zip(&slot.data) {
                *v = d.load(Ordering::Acquire);
            }
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // torn: the owner lapped us mid-read
            }
            let Some(kind) = SpanKind::from_u64(vals[F_KIND]) else { continue };
            out.push(SpanRecord {
                trace: vals[F_TRACE],
                span: vals[F_SPAN],
                parent: vals[F_PARENT],
                kind,
                start_ns: vals[F_START],
                end_ns: vals[F_END],
                shard: (vals[F_SHARD] > 0).then(|| vals[F_SHARD] as usize - 1),
                rows: vals[F_ROWS],
                thread,
            });
        }
    }
}

/// A sampling span recorder. Construct one per test with
/// [`Tracer::new`] (no environment coupling), or share the
/// process-wide [`Tracer::global`] configured by `FUSEDMM_TRACE`.
pub struct Tracer {
    /// Admit 1 root in `every`; 0 = tracing disabled.
    every: u64,
    /// Per-thread ring capacity (slots).
    capacity: usize,
    /// Distinguishes tracers in the thread-local ring table.
    id: usize,
    epoch: Instant,
    attempts: AtomicU64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    rings: Mutex<Vec<Arc<SpanRing>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("every", &self.every)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// This thread's rings, one per tracer it has recorded into.
    static THREAD_RINGS: RefCell<Vec<(usize, Arc<SpanRing>)>> = const { RefCell::new(Vec::new()) };
}

static TRACER_IDS: AtomicUsize = AtomicUsize::new(0);

impl Tracer {
    /// A tracer sampling roots at `rate` (clamped to `[0, 1]`; `0`
    /// disables) with `capacity` span slots per recording thread.
    pub fn new(rate: f64, capacity: usize) -> Arc<Tracer> {
        let every = if rate > 0.0 { (1.0 / rate.min(1.0)).round().max(1.0) as u64 } else { 0 };
        Arc::new(Tracer {
            every,
            capacity,
            id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            attempts: AtomicU64::new(0),
            next_trace: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            rings: Mutex::new(Vec::new()),
        })
    }

    /// A tracer that samples nothing (every span site short-circuits).
    pub fn disabled() -> Arc<Tracer> {
        Tracer::new(0.0, 8)
    }

    /// The process-wide tracer, configured once from `FUSEDMM_TRACE`
    /// (a sample rate in `(0, 1]`, e.g. `0.01`; unset, empty, `0`, or
    /// unparsable disables tracing). Ring capacity is 4096 spans per
    /// recording thread.
    pub fn global() -> &'static Arc<Tracer> {
        static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let rate = std::env::var("FUSEDMM_TRACE")
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap_or(0.0);
            Tracer::new(rate, 4096)
        })
    }

    /// Whether any root can ever be sampled. Span sites may use this
    /// to skip even the cheap work when tracing is off.
    pub fn enabled(&self) -> bool {
        self.every > 0
    }

    /// Sampling decision for a new request: `Some` root context for
    /// 1-in-N calls, `None` otherwise (and always when disabled).
    pub fn sample_root(&self) -> Option<SpanCtx> {
        if self.every == 0 {
            return None;
        }
        let n = self.attempts.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.every) {
            return None;
        }
        let trace = self.next_trace.fetch_add(1, Ordering::Relaxed) + 1;
        let span = self.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        Some(SpanCtx { trace, span, parent: 0 })
    }

    /// A child context under `parent` (same trace, fresh span id).
    pub fn child(&self, parent: SpanCtx) -> SpanCtx {
        let span = self.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        SpanCtx { trace: parent.trace, span, parent: parent.span }
    }

    /// Nanoseconds since tracer creation — the span timestamp base.
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Record one closed span into the calling thread's ring.
    pub fn record(
        &self,
        ctx: SpanCtx,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
        shard: Option<usize>,
        rows: u64,
    ) {
        let vals = [
            ctx.trace,
            ctx.span,
            ctx.parent,
            kind as u64,
            start_ns,
            end_ns.max(start_ns),
            shard.map_or(0, |s| s as u64 + 1),
            rows,
        ];
        THREAD_RINGS.with(|rings| {
            let mut rings = rings.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                ring.push(vals);
                return;
            }
            let ring = Arc::new(SpanRing::new(self.capacity));
            self.rings.lock().unwrap().push(Arc::clone(&ring));
            ring.push(vals);
            rings.push((self.id, ring));
        });
    }

    /// Every span currently resident in any thread's ring, sorted by
    /// `(trace, start_ns, span)`. Slots being overwritten at this
    /// instant are skipped, not blocked on.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for (i, ring) in self.rings.lock().unwrap().iter().enumerate() {
            ring.snapshot(i, &mut out);
        }
        out.sort_by_key(|s| (s.trace, s.start_ns, s.span));
        out
    }

    /// Dump everything recorded as a chrome://tracing JSON array of
    /// "complete" (`"ph": "X"`) events — load it at chrome://tracing
    /// or ui.perfetto.dev. Timestamps are microseconds since tracer
    /// creation; `pid` is 1; `tid` is the recording thread's ring
    /// index; trace/span/parent ids and the shard/rows arguments ride
    /// in `args`.
    pub fn chrome_json(&self) -> String {
        let spans = self.spans();
        let mut out = String::from("[\n");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let dur = s.end_ns.saturating_sub(s.start_ns);
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"cat\": \"fusedmm\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \
                 \"args\": {{\"trace\": {}, \"span\": {}, \"parent\": {}{}, \"rows\": {}}}}}",
                s.kind.label(),
                s.start_ns as f64 / 1e3,
                dur as f64 / 1e3,
                s.thread,
                s.trace,
                s.span,
                s.parent,
                s.shard.map_or(String::new(), |sh| format!(", \"shard\": {sh}")),
                s.rows,
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_samples_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        for _ in 0..100 {
            assert!(t.sample_root().is_none());
        }
        assert!(t.spans().is_empty());
    }

    #[test]
    fn rate_one_samples_every_root_with_unique_ids() {
        let t = Tracer::new(1.0, 64);
        let a = t.sample_root().unwrap();
        let b = t.sample_root().unwrap();
        assert_ne!(a.trace, b.trace);
        assert_ne!(a.span, b.span);
        assert_eq!((a.parent, b.parent), (0, 0));
        let c = t.child(a);
        assert_eq!((c.trace, c.parent), (a.trace, a.span));
        assert_ne!(c.span, a.span);
    }

    #[test]
    fn fractional_rate_admits_one_in_n() {
        let t = Tracer::new(0.25, 64);
        let admitted = (0..100).filter(|_| t.sample_root().is_some()).count();
        assert_eq!(admitted, 25, "deterministic 1-in-4 sampling");
    }

    #[test]
    fn recorded_spans_come_back_decoded_and_sorted() {
        let t = Tracer::new(1.0, 64);
        let root = t.sample_root().unwrap();
        let child = t.child(root);
        t.record(child, SpanKind::Kernel, 50, 70, Some(3), 128);
        t.record(root, SpanKind::Embed, 10, 90, None, 4);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Embed, "sorted by start");
        assert_eq!(spans[0].shard, None);
        assert_eq!(spans[1].kind, SpanKind::Kernel);
        assert_eq!(spans[1].shard, Some(3));
        assert_eq!(spans[1].parent, root.span);
        assert_eq!(spans[1].rows, 128);
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_capacity() {
        let t = Tracer::new(1.0, 8);
        let root = t.sample_root().unwrap();
        for i in 0..100u64 {
            t.record(t.child(root), SpanKind::Enqueue, i, i + 1, None, i);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 8);
        assert!(spans.iter().all(|s| s.start_ns >= 92), "only the newest spans remain");
    }

    #[test]
    fn cross_thread_recording_lands_in_separate_rings() {
        let t = Tracer::new(1.0, 64);
        let root = t.sample_root().unwrap();
        std::thread::scope(|s| {
            for i in 0..4 {
                let t = &t;
                let child = t.child(root);
                s.spawn(move || {
                    t.record(child, SpanKind::Batch, 10 * i, 10 * i + 5, Some(i as usize), 1);
                });
            }
        });
        t.record(root, SpanKind::Embed, 0, 100, None, 4);
        let spans = t.spans();
        assert_eq!(spans.len(), 5);
        let threads: std::collections::HashSet<_> = spans.iter().map(|s| s.thread).collect();
        assert!(threads.len() >= 5, "each recording thread has its own ring");
    }

    #[test]
    fn chrome_dump_contains_complete_events() {
        let t = Tracer::new(1.0, 64);
        let root = t.sample_root().unwrap();
        t.record(t.child(root), SpanKind::Kernel, 1_000, 3_500, Some(0), 64);
        t.record(root, SpanKind::Embed, 0, 5_000, None, 64);
        let json = t.chrome_json();
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"kernel\""));
        assert!(json.contains("\"shard\": 0"));
        assert!(json.contains("\"dur\": 2.500"), "{json}");
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    }
}
