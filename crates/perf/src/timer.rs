//! Repetition timing, matching the paper's measurement protocol.
//!
//! §V-A: "For all of our experiments, we measure the time for 10
//! iterations and report the average time." [`time_iterations`] does
//! exactly that (with a warm-up run excluded), and also reports the
//! minimum, which the autotuner and some ablations prefer as the
//! lower-noise statistic.

use std::time::Instant;

/// Timing summary over repeated runs of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Mean seconds per iteration — the paper's reported number.
    pub avg: f64,
    /// Fastest iteration.
    pub min: f64,
    /// Slowest iteration.
    pub max: f64,
    /// Number of timed iterations.
    pub reps: usize,
}

impl TimingStats {
    /// Format as seconds with three decimals, the paper's table style.
    pub fn fmt_avg(&self) -> String {
        format!("{:.3}", self.avg)
    }
}

/// Run `f` once untimed (warm-up), then `reps` timed iterations.
///
/// # Panics
/// Panics if `reps == 0`.
pub fn time_iterations(reps: usize, mut f: impl FnMut()) -> TimingStats {
    assert!(reps > 0, "need at least one timed iteration");
    f(); // warm-up: page in operands, settle the tuner
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
        max = max.max(dt);
    }
    TimingStats { avg: total / reps as f64, min, max, reps }
}

/// The paper's default repetition count.
pub const PAPER_REPS: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_warmup_plus_reps() {
        let calls = AtomicUsize::new(0);
        let stats = time_iterations(5, || {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        assert_eq!(stats.reps, 5);
    }

    #[test]
    fn min_le_avg_le_max() {
        let mut spin = 0u64;
        let stats = time_iterations(4, || {
            for i in 0..10_000u64 {
                spin = spin.wrapping_add(i);
            }
        });
        assert!(stats.min <= stats.avg + 1e-12);
        assert!(stats.avg <= stats.max + 1e-12);
        assert!(stats.min > 0.0);
        std::hint::black_box(spin);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_reps_panics() {
        let _ = time_iterations(0, || {});
    }

    #[test]
    fn formats_three_decimals() {
        let s = TimingStats { avg: 0.12345, min: 0.1, max: 0.2, reps: 10 };
        assert_eq!(s.fmt_avg(), "0.123");
    }
}
