//! Floating-point-operation counts per kernel pattern.
//!
//! §IV-C of the paper counts "both addition and multiplications as
//! floating point operations": the embedding pattern performs a
//! `d`-element dot product (2d flops) plus a `d`-element scaled
//! accumulate (2d flops) per nonzero — `4·d·nnz` total, the numerator
//! `2dmδ + 2dmδ` of Eq. 4. The other patterns are counted the same way.

use fusedmm_ops::Pattern;

/// Flops one edge costs for `pattern` at dimension `d` (nonlinearities
/// like the sigmoid are excluded, as in the paper's model).
pub fn flops_per_edge(pattern: Pattern, d: usize) -> usize {
    match pattern {
        // dot (2d) + axpy (2d)
        Pattern::SigmoidEmbedding => 4 * d,
        // subtract (d) + square-accumulate (2d) + sqrt&scale (~2) + axpy (2d)
        Pattern::FrModel => 5 * d + 2,
        // subtract (d) + square-accumulate (2d) + rational kernel (~3) + axpy (2d)
        Pattern::TDistEmbedding => 5 * d + 3,
        // axpy with the edge weight
        Pattern::Gcn => 2 * d,
        // MLP dominates; counted separately by callers that know the
        // hidden width. Per-edge linear algebra after the MLP: sigmoid
        // (excluded) + scale (d) + max (d).
        Pattern::GnnMlp => 2 * d,
        Pattern::Custom => 4 * d,
    }
}

/// Total kernel flops for a graph with `nnz` nonzeros.
pub fn total_flops(pattern: Pattern, d: usize, nnz: usize) -> usize {
    flops_per_edge(pattern, d) * nnz
}

/// Achieved GFLOP/s given kernel seconds.
pub fn gflops(pattern: Pattern, d: usize, nnz: usize, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "elapsed time must be positive");
    total_flops(pattern, d, nnz) as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_matches_eq4_numerator() {
        // Eq. 4 numerator: 2dmδ + 2dmδ = 4d·nnz.
        assert_eq!(total_flops(Pattern::SigmoidEmbedding, 128, 1000), 4 * 128 * 1000);
    }

    #[test]
    fn gcn_is_a_plain_spmm_count() {
        assert_eq!(flops_per_edge(Pattern::Gcn, 64), 128);
    }

    #[test]
    fn gflops_scales_inversely_with_time() {
        let fast = gflops(Pattern::Gcn, 128, 1_000_000, 0.1);
        let slow = gflops(Pattern::Gcn, 128, 1_000_000, 0.2);
        assert!((fast / slow - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_panics() {
        let _ = gflops(Pattern::Gcn, 8, 8, 0.0);
    }
}
