//! A concurrent up/down counter with a high-water mark — the shape an
//! "in-flight requests" metric has.
//!
//! The serving engine's ticketed (non-blocking) request path needs to
//! answer two questions a latency histogram cannot: *how many requests
//! are open right now* (the saturation signal an admission controller
//! watches) and *how deep did the in-flight window ever get* (the
//! capacity signal). [`Gauge`] answers both with two relaxed atomics;
//! [`GaugeGuard`] ties the decrement to scope exit so an early return,
//! a dropped ticket, or a panic can never leak a permanently "open"
//! request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A concurrent gauge: current value plus the peak it ever reached.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Increment and update the peak; returns the post-increment value.
    pub fn inc(&self) -> u64 {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Decrement (saturating at zero, so a double-release cannot wrap).
    pub fn dec(&self) {
        let _ =
            self.current.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The highest value ever observed by [`Gauge::inc`].
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Increment, returning a guard that decrements when dropped. The
    /// gauge must be shared (`Arc`) so the guard can outlive the
    /// borrow that created it — exactly the shape a completion token
    /// handed to a caller has.
    pub fn acquire(self: &Arc<Self>) -> GaugeGuard {
        self.inc();
        GaugeGuard { gauge: Arc::clone(self) }
    }
}

/// RAII handle holding one unit of a shared [`Gauge`]; dropping it
/// decrements. Obtained from [`Gauge::acquire`].
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Arc<Gauge>,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_dec_and_peak() {
        let g = Gauge::new();
        assert_eq!((g.value(), g.peak()), (0, 0));
        g.inc();
        g.inc();
        assert_eq!((g.value(), g.peak()), (2, 2));
        g.dec();
        assert_eq!((g.value(), g.peak()), (1, 2));
        g.inc();
        assert_eq!((g.value(), g.peak()), (2, 2), "peak only moves on new highs");
    }

    #[test]
    fn dec_saturates_at_zero() {
        let g = Gauge::new();
        g.dec();
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn guard_releases_on_drop() {
        let g = Arc::new(Gauge::new());
        let a = g.acquire();
        let b = g.acquire();
        assert_eq!((g.value(), g.peak()), (2, 2));
        drop(a);
        assert_eq!(g.value(), 1);
        drop(b);
        assert_eq!((g.value(), g.peak()), (0, 2));
    }

    #[test]
    fn concurrent_acquires_balance() {
        let g = Arc::new(Gauge::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..500 {
                        let _guard = g.acquire();
                    }
                });
            }
        });
        assert_eq!(g.value(), 0, "every guard released its unit");
        assert!(g.peak() >= 1 && g.peak() <= 8);
    }
}
