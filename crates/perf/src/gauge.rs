//! A concurrent up/down counter with a high-water mark — the shape an
//! "in-flight requests" metric has.
//!
//! The serving engine's ticketed (non-blocking) request path needs to
//! answer two questions a latency histogram cannot: *how many requests
//! are open right now* (the saturation signal an admission controller
//! watches) and *how deep did the in-flight window ever get* (the
//! capacity signal). [`Gauge`] answers both with two relaxed atomics;
//! [`GaugeGuard`] ties the decrement to scope exit so an early return,
//! a dropped ticket, or a panic can never leak a permanently "open"
//! request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A concurrent gauge: current value plus the peak it ever reached.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Increment and update the peak; returns the post-increment value.
    pub fn inc(&self) -> u64 {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Decrement (saturating at zero, so a double-release cannot wrap).
    pub fn dec(&self) {
        let _ =
            self.current.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The highest value ever observed by [`Gauge::inc`].
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// A consistent `(current, peak)` pair. Two separate
    /// [`Gauge::value`] / [`Gauge::peak`] loads can interleave with a
    /// concurrent [`Gauge::inc`] between them and report `peak <
    /// current`; the snapshot clamps the invariant back
    /// (`peak >= current` always holds in the returned pair).
    pub fn snapshot(&self) -> GaugeSnapshot {
        let current = self.current.load(Ordering::Relaxed);
        let peak = self.peak.load(Ordering::Relaxed).max(current);
        GaugeSnapshot { current, peak }
    }

    /// Restart the high-water mark from the current value — the knob a
    /// per-interval exporter uses to report peak-per-window instead of
    /// peak-ever. Increments racing the reset may be absorbed into the
    /// new window; the `peak >= current` invariant is restored by the
    /// next [`Gauge::inc`] or [`Gauge::snapshot`].
    pub fn reset_peak(&self) {
        self.peak.store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Increment, returning a guard that decrements when dropped. The
    /// gauge must be shared (`Arc`) so the guard can outlive the
    /// borrow that created it — exactly the shape a completion token
    /// handed to a caller has.
    pub fn acquire(self: &Arc<Self>) -> GaugeGuard {
        self.inc();
        GaugeGuard { gauge: Arc::clone(self) }
    }
}

/// A consistent point-in-time view of a [`Gauge`], produced by
/// [`Gauge::snapshot`]: `peak >= current` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The gauge's value at snapshot time.
    pub current: u64,
    /// The high-water mark (never below `current`).
    pub peak: u64,
}

/// RAII handle holding one unit of a shared [`Gauge`]; dropping it
/// decrements. Obtained from [`Gauge::acquire`].
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Arc<Gauge>,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_dec_and_peak() {
        let g = Gauge::new();
        assert_eq!((g.value(), g.peak()), (0, 0));
        g.inc();
        g.inc();
        assert_eq!((g.value(), g.peak()), (2, 2));
        g.dec();
        assert_eq!((g.value(), g.peak()), (1, 2));
        g.inc();
        assert_eq!((g.value(), g.peak()), (2, 2), "peak only moves on new highs");
    }

    #[test]
    fn dec_saturates_at_zero() {
        let g = Gauge::new();
        g.dec();
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn guard_releases_on_drop() {
        let g = Arc::new(Gauge::new());
        let a = g.acquire();
        let b = g.acquire();
        assert_eq!((g.value(), g.peak()), (2, 2));
        drop(a);
        assert_eq!(g.value(), 1);
        drop(b);
        assert_eq!((g.value(), g.peak()), (0, 2));
    }

    #[test]
    fn snapshot_is_consistent_and_reset_restarts_the_window() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        let s = g.snapshot();
        assert_eq!((s.current, s.peak), (2, 3));
        g.reset_peak();
        assert_eq!(g.peak(), 2, "window restarts from the current value");
        g.dec();
        g.inc();
        g.inc();
        let s = g.snapshot();
        assert_eq!((s.current, s.peak), (3, 3), "new highs tracked after reset");
    }

    #[test]
    fn snapshot_never_reports_peak_below_current() {
        // Hammer inc/dec on one thread while another snapshots; every
        // observed pair must satisfy the invariant even though the two
        // fields are separate atomics.
        let g = Arc::new(Gauge::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let writer = Arc::clone(&g);
            let done = Arc::clone(&stop);
            s.spawn(move || {
                for _ in 0..200_000 {
                    writer.inc();
                    writer.dec();
                }
                done.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let snap = g.snapshot();
                assert!(snap.peak >= snap.current, "{snap:?}");
            }
        });
    }

    #[test]
    fn concurrent_acquires_balance() {
        let g = Arc::new(Gauge::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..500 {
                        let _guard = g.acquire();
                    }
                });
            }
        });
        assert_eq!(g.value(), 0, "every guard released its unit");
        assert!(g.peak() >= 1 && g.peak() <= 8);
    }
}
