//! Counting global allocator for memory experiments.
//!
//! Fig. 10(b) of the paper compares the memory consumption of DGL's
//! unfused pipeline against FusedMM as the feature dimension grows.
//! To measure the same quantity we wrap the system allocator with
//! relaxed atomic counters for live and peak bytes. Benchmark binaries
//! opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fusedmm_perf::CountingAllocator = fusedmm_perf::CountingAllocator;
//! ```
//!
//! The counters are process-global; scoped measurements use
//! [`reset_peak`] + [`peak_bytes`] around the region of interest.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ENABLED: AtomicUsize = AtomicUsize::new(0);

/// A `#[global_allocator]` wrapper around [`System`] that tracks live
/// and peak allocation in bytes.
pub struct CountingAllocator;

// SAFETY: delegates all allocation to `System`; only bookkeeping added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            track_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        track_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            track_dealloc(layout.size());
            track_alloc(new_size);
        }
        p
    }
}

#[inline]
fn track_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    // Monotone max; benign race tolerated (peak may be a few bytes low
    // under contention, irrelevant at megabyte scale).
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(cur) => peak = cur,
        }
    }
    ENABLED.store(1, Ordering::Relaxed);
}

#[inline]
fn track_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

/// Bytes currently allocated (0 until a binary registers the allocator).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark since process start or the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Restart peak tracking from the current live level.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Whether a counting allocator is actually registered in this process
/// (tests and binaries that skip registration read zeros).
pub fn is_active() -> bool {
    ENABLED.load(Ordering::Relaxed) != 0
}

/// Measure the peak allocation increase caused by `f`, in bytes, along
/// with its result. Requires the allocator to be registered; returns 0
/// extra bytes otherwise.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = live_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is not registered in unit tests (registering a
    // global allocator in a lib crate would impose it on every
    // dependent). These tests exercise the bookkeeping directly.

    #[test]
    fn counters_track_alloc_dealloc() {
        let before = live_bytes();
        track_alloc(1000);
        assert_eq!(live_bytes(), before + 1000);
        track_dealloc(1000);
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn peak_is_monotone_until_reset() {
        reset_peak();
        let base = peak_bytes();
        track_alloc(5000);
        assert!(peak_bytes() >= base + 5000);
        track_dealloc(5000);
        assert!(peak_bytes() >= base + 5000, "peak survives dealloc");
        reset_peak();
        assert!(peak_bytes() <= base + 64, "reset returns to live level");
    }

    #[test]
    fn measure_peak_reports_delta() {
        // With tracking active (track_alloc was called above), simulate
        // a region that allocates then frees.
        let ((), extra) = measure_peak(|| {
            track_alloc(4096);
            track_dealloc(4096);
        });
        assert!(extra >= 4096);
    }
}
