//! A pull-model metrics registry: one place to enumerate every
//! counter, gauge, and histogram the serving stack maintains.
//!
//! PRs 1–5 grew metrics organically — `EngineMetrics`,
//! `ShardedMetrics`, `CacheMetrics`, assorted histograms — each with
//! its own snapshot struct and `Display`. [`MetricsRegistry`] absorbs
//! them behind one registration API without changing how they are
//! *recorded*: the hot paths keep hitting their relaxed atomics, and
//! the registry holds **collector closures** that read those atomics
//! only when a snapshot is requested (the Prometheus "collector"
//! model). A collector captures its `Arc`s and appends [`Sample`]s —
//! named values with `(key, value)` labels such as `shard`, `backend`,
//! `op`, `d` — so one [`MetricsRegistry::snapshot`] enumerates the
//! whole process.
//!
//! Two expositions are provided: [`MetricsSnapshot::to_prometheus`]
//! (text format 0.0.4 — counters, gauges, and summary-style quantiles)
//! and [`MetricsSnapshot::to_json`] (hand-rolled, no serde, matching
//! the bench harness's report conventions). [`parse_prometheus`] is a
//! minimal text-format parser used by CI to prove the exposition
//! round-trips — the format cannot silently rot.
//!
//! Naming conventions (documented in the README's Observability
//! section): every metric is prefixed `fusedmm_`, monotonic counters
//! end in `_total`, and latency summaries end in `_seconds`.

use std::sync::Mutex;
use std::time::Duration;

use crate::hist::{HistogramSnapshot, RatioSnapshot};

/// One observed value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level (may go down).
    Gauge(f64),
    /// A latency distribution summary.
    Histogram(HistogramSnapshot),
    /// A ratio distribution summary (e.g. per-request hit ratio).
    Ratio(RatioSnapshot),
}

/// A named, labeled sample: the unit a collector appends and an
/// exposition renders.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`fusedmm_…`, `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, e.g. `("shard", "2")`, `("op", "embed_sigmoid")`.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: MetricValue,
}

impl Sample {
    /// A counter sample with no labels.
    pub fn counter(name: impl Into<String>, value: u64) -> Sample {
        Sample { name: name.into(), labels: Vec::new(), value: MetricValue::Counter(value) }
    }

    /// A gauge sample with no labels.
    pub fn gauge(name: impl Into<String>, value: f64) -> Sample {
        Sample { name: name.into(), labels: Vec::new(), value: MetricValue::Gauge(value) }
    }

    /// A latency-summary sample with no labels.
    pub fn histogram(name: impl Into<String>, snap: HistogramSnapshot) -> Sample {
        Sample { name: name.into(), labels: Vec::new(), value: MetricValue::Histogram(snap) }
    }

    /// A ratio-summary sample with no labels.
    pub fn ratio(name: impl Into<String>, snap: RatioSnapshot) -> Sample {
        Sample { name: name.into(), labels: Vec::new(), value: MetricValue::Ratio(snap) }
    }

    /// Append one label pair (builder-style).
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Sample {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// Append every label pair of `labels` (builder-style).
    pub fn labels(mut self, labels: &[(&str, &str)]) -> Sample {
        for (k, v) in labels {
            self.labels.push(((*k).to_string(), (*v).to_string()));
        }
        self
    }
}

type Collector = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

/// A registry of metric collectors. Cheap to construct; collectors run
/// only when [`MetricsRegistry::snapshot`] is called, so registration
/// adds zero cost to the recording hot paths.
#[derive(Default)]
pub struct MetricsRegistry {
    collectors: Mutex<Vec<Collector>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.collectors.lock().map(|c| c.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry").field("collectors", &n).finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register one collector: a closure that appends its current
    /// samples on every snapshot. Capture `Arc`s to the live atomics;
    /// do not pre-compute values at registration time.
    pub fn register(&self, collector: impl Fn(&mut Vec<Sample>) + Send + Sync + 'static) {
        self.collectors.lock().unwrap().push(Box::new(collector));
    }

    /// Run every collector and return the combined sample set, sorted
    /// by metric name (stable, so a collector's label order is kept).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples = Vec::new();
        for c in self.collectors.lock().unwrap().iter() {
            c(&mut samples);
        }
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { samples }
    }
}

/// A point-in-time enumeration of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// All collected samples, sorted by name.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// The first sample matching `name` whose labels include every
    /// pair of `labels` — the lookup shape reconciliation tests use.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.name == name
                && labels.iter().all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
    }

    /// The counter value of the first matching sample, or `None` when
    /// absent or not a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The gauge value of the first matching sample.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get(name, labels)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Render as Prometheus text format 0.0.4. Counters and gauges are
    /// one line each; histograms and ratios render summary-style
    /// (`{quantile="…"}` series plus `_sum` and `_count`). Durations
    /// are exposed in seconds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut prev_name: Option<&str> = None;
        for s in &self.samples {
            if prev_name != Some(s.name.as_str()) {
                let kind = match s.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) | MetricValue::Ratio(_) => "summary",
                };
                out.push_str(&format!("# TYPE {} {}\n", s.name, kind));
                prev_name = Some(s.name.as_str());
            }
            match &s.value {
                MetricValue::Counter(v) => {
                    prom_line(&mut out, &s.name, &s.labels, None, &v.to_string());
                }
                MetricValue::Gauge(v) => {
                    prom_line(&mut out, &s.name, &s.labels, None, &fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    for (q, d) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                        let quantile = Some(("quantile", q));
                        prom_line(&mut out, &s.name, &s.labels, quantile, &fmt_secs(d));
                    }
                    let sum = format!("{}_sum", s.name);
                    prom_line(&mut out, &sum, &s.labels, None, &fmt_secs(h.total));
                    let count = format!("{}_count", s.name);
                    prom_line(&mut out, &count, &s.labels, None, &h.count.to_string());
                }
                MetricValue::Ratio(r) => {
                    for (q, v) in [("0.5", r.p50), ("0.99", r.p99)] {
                        let quantile = Some(("quantile", q));
                        prom_line(&mut out, &s.name, &s.labels, quantile, &fmt_f64(v));
                    }
                    let sum = format!("{}_sum", s.name);
                    prom_line(&mut out, &sum, &s.labels, None, &fmt_f64(r.mean * r.count as f64));
                    let count = format!("{}_count", s.name);
                    prom_line(&mut out, &count, &s.labels, None, &r.count.to_string());
                }
            }
        }
        out
    }

    /// Render as a JSON array of sample objects (hand-rolled — the
    /// workspace carries no serde — with the same escaping rules as
    /// the bench report). Durations are exposed in nanoseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  {\"name\": \"");
            out.push_str(&json_escape(&s.name));
            out.push_str("\", \"labels\": {");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)));
            }
            out.push_str("}, ");
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("\"type\": \"counter\", \"value\": {v}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("\"type\": \"gauge\", \"value\": {}", fmt_f64(*v)));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "\"type\": \"histogram\", \"count\": {}, \"sum_ns\": {}, \
                         \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
                         \"max_ns\": {}",
                        h.count,
                        h.total.as_nanos(),
                        h.mean.as_nanos(),
                        h.p50.as_nanos(),
                        h.p90.as_nanos(),
                        h.p99.as_nanos(),
                        h.max.as_nanos()
                    ));
                }
                MetricValue::Ratio(r) => {
                    out.push_str(&format!(
                        "\"type\": \"ratio\", \"count\": {}, \"mean\": {}, \"p50\": {}, \
                         \"p99\": {}",
                        r.count,
                        fmt_f64(r.mean),
                        fmt_f64(r.p50),
                        fmt_f64(r.p99)
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }
}

/// Append one exposition line: `name{labels…} value`. `extra` is an
/// additional label pair rendered first (the `quantile` label).
fn prom_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if extra.is_some() || !labels.is_empty() {
        out.push('{');
        let mut first = true;
        if let Some((k, v)) = extra {
            out.push_str(&format!("{}=\"{}\"", k, prom_escape(v)));
            first = false;
        }
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            out.push_str(&format!("{}=\"{}\"", k, prom_escape(v)));
            first = false;
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Escape a label value per the text-format rules: backslash, double
/// quote, and newline.
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` so it parses back exactly; non-finite values (which
/// neither the text format nor JSON can carry portably) render as 0.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn fmt_secs(d: Duration) -> String {
    fmt_f64(d.as_secs_f64())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One line parsed back out of the Prometheus text format.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name as written (quantile series keep the base name;
    /// `_sum` / `_count` series keep their suffixed names).
    pub name: String,
    /// Label pairs in exposition order, including `quantile`.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A minimal Prometheus text-format parser: enough to prove
/// [`MetricsSnapshot::to_prometheus`] emits well-formed lines (CI's
/// round-trip check). Comments and blank lines are skipped; any other
/// malformed line is an error naming its line number.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {} in {:?}", lineno + 1, what, raw);
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| err("missing value"))?;
        let name = &line[..name_end];
        if name.is_empty()
            || !name.chars().enumerate().all(|(i, c)| {
                c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit())
            })
        {
            return Err(err("bad metric name"));
        }
        let mut rest = &line[name_end..];
        let mut labels = Vec::new();
        if let Some(inner) = rest.strip_prefix('{') {
            let close = inner.find('}').ok_or_else(|| err("unterminated label set"))?;
            let mut body = &inner[..close];
            rest = &inner[close + 1..];
            while !body.is_empty() {
                let eq = body.find('=').ok_or_else(|| err("label without ="))?;
                let key = body[..eq].trim().to_string();
                let after = body[eq + 1..].trim_start();
                let after = after.strip_prefix('"').ok_or_else(|| err("label value not quoted"))?;
                // Scan to the closing quote, honoring escapes.
                let mut value = String::new();
                let mut chars = after.char_indices();
                let mut end = None;
                while let Some((i, c)) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some((_, 'n')) => value.push('\n'),
                            Some((_, e)) => value.push(e),
                            None => return Err(err("dangling escape")),
                        },
                        '"' => {
                            end = Some(i);
                            break;
                        }
                        c => value.push(c),
                    }
                }
                let end = end.ok_or_else(|| err("unterminated label value"))?;
                labels.push((key, value));
                let mut tail = after[end + 1..].trim_start();
                if let Some(t) = tail.strip_prefix(',') {
                    tail = t.trim_start();
                } else if !tail.is_empty() {
                    return Err(err("label pairs not comma-separated"));
                }
                body = tail;
            }
        }
        let value_str = rest.trim();
        if value_str.is_empty() {
            return Err(err("missing value"));
        }
        let value: f64 = value_str.parse().map_err(|_| err("bad value"))?;
        samples.push(PromSample { name: name.to_string(), labels, value });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{LatencyHistogram, RatioHistogram};
    use std::sync::Arc;

    #[test]
    fn collectors_run_per_snapshot_and_sort_by_name() {
        let reg = MetricsRegistry::new();
        let live = Arc::new(std::sync::atomic::AtomicU64::new(1));
        let seen = Arc::clone(&live);
        reg.register(move |out| {
            out.push(Sample::counter(
                "fusedmm_zz_total",
                seen.load(std::sync::atomic::Ordering::Relaxed),
            ));
            out.push(Sample::gauge("fusedmm_aa", 2.5).label("shard", "0"));
        });
        let s1 = reg.snapshot();
        assert_eq!(s1.samples[0].name, "fusedmm_aa", "sorted by name");
        assert_eq!(s1.counter("fusedmm_zz_total", &[]), Some(1));
        // The collector reads the live atomic, not a registration-time
        // copy.
        live.store(7, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(reg.snapshot().counter("fusedmm_zz_total", &[]), Some(7));
        assert_eq!(s1.gauge_value("fusedmm_aa", &[("shard", "0")]), Some(2.5));
        assert_eq!(s1.gauge_value("fusedmm_aa", &[("shard", "1")]), None);
    }

    #[test]
    fn prometheus_round_trips_through_the_parser() {
        let reg = MetricsRegistry::new();
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        let hs = h.snapshot();
        let r = RatioHistogram::new();
        r.record(0.25);
        r.record(0.75);
        let rs = r.snapshot();
        reg.register(move |out| {
            out.push(Sample::counter("fusedmm_rows_total", 42).label("shard", "1"));
            out.push(Sample::counter("fusedmm_rows_total", 7).label("shard", "2"));
            out.push(Sample::gauge("fusedmm_inflight", 3.0));
            out.push(Sample::histogram("fusedmm_embed_latency_seconds", hs));
            out.push(Sample::ratio("fusedmm_cache_hit_ratio", rs));
            out.push(Sample::counter("fusedmm_odd_total", 1).label("note", "a\"b\\c\nd"));
        });
        let text = reg.snapshot().to_prometheus();
        let parsed = parse_prometheus(&text).expect("own exposition parses");
        // Counters survive exactly, labels intact.
        let find = |name: &str, k: &str, v: &str| {
            parsed
                .iter()
                .find(|p| p.name == name && p.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                .unwrap_or_else(|| panic!("{name}{{{k}={v}}} missing"))
        };
        assert_eq!(find("fusedmm_rows_total", "shard", "1").value, 42.0);
        assert_eq!(find("fusedmm_rows_total", "shard", "2").value, 7.0);
        assert_eq!(find("fusedmm_odd_total", "note", "a\"b\\c\nd").value, 1.0);
        // Summary series: three quantiles plus _sum and _count.
        for q in ["0.5", "0.9", "0.99"] {
            find("fusedmm_embed_latency_seconds", "quantile", q);
        }
        let count = parsed
            .iter()
            .find(|p| p.name == "fusedmm_embed_latency_seconds_count")
            .expect("_count series");
        assert_eq!(count.value, 2.0);
        let sum = parsed
            .iter()
            .find(|p| p.name == "fusedmm_embed_latency_seconds_sum")
            .expect("_sum series");
        assert!((sum.value - 400e-6).abs() < 1e-9, "sum {} ~ 400us", sum.value);
        for q in ["0.5", "0.99"] {
            find("fusedmm_cache_hit_ratio", "quantile", q);
        }
        // TYPE comments name every base metric exactly once.
        for ty in [
            "# TYPE fusedmm_rows_total counter",
            "# TYPE fusedmm_inflight gauge",
            "# TYPE fusedmm_embed_latency_seconds summary",
            "# TYPE fusedmm_cache_hit_ratio summary",
        ] {
            assert_eq!(text.matches(ty).count(), 1, "{ty}");
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("no_value").is_err());
        assert!(parse_prometheus("bad name 1").is_err());
        assert!(parse_prometheus("x{unclosed=\"v\" 1").is_err());
        assert!(parse_prometheus("x{k=unquoted} 1").is_err());
        assert!(parse_prometheus("x nan_is_fine_actually").is_err());
        assert!(parse_prometheus("# a comment\n\nok_total 3").is_ok());
    }

    #[test]
    fn json_exposition_is_escaped_and_structured() {
        let reg = MetricsRegistry::new();
        let h = LatencyHistogram::new();
        h.record(Duration::from_millis(2));
        let hs = h.snapshot();
        reg.register(move |out| {
            out.push(Sample::counter("fusedmm_c_total", 5).label("op", "a\"b"));
            out.push(Sample::histogram("fusedmm_lat_seconds", hs));
            out.push(Sample::gauge("fusedmm_bad", f64::NAN));
        });
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"name\": \"fusedmm_c_total\""));
        assert!(json.contains("\"op\": \"a\\\"b\""));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"value\": 0"), "NaN gauge rendered as 0");
        assert!(!json.contains("NaN"));
    }
}
