//! Lock-free latency histogram and throughput accounting for the
//! serving engine.
//!
//! Serving cares about the latency *distribution* — the p99 a user at
//! the tail experiences — not the mean a batch benchmark reports.
//! [`LatencyHistogram`] records durations into logarithmically spaced
//! buckets (4 sub-buckets per power of two, ≤ ~19% relative quantile
//! error) using only relaxed atomics, so concurrent request threads
//! record without coordination. [`HistogramSnapshot`] extracts count,
//! mean, p50/p90/p99, and max at read time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per power of two of nanoseconds.
const SUBBUCKETS: usize = 4;
/// Powers of two covered: 1ns up to ~2^40 ns (~18 minutes).
const MAJORS: usize = 40;
const BUCKETS: usize = MAJORS * SUBBUCKETS;

/// A concurrent histogram of durations with log-spaced buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        if nanos < 2 {
            return 0;
        }
        // floor(log2), then the position within that power-of-two
        // span quantized to SUBBUCKETS slots.
        let major = 63 - nanos.leading_zeros() as usize;
        let span_lo = 1u64 << major;
        let minor = ((nanos - span_lo) * SUBBUCKETS as u64 / span_lo) as usize;
        (major * SUBBUCKETS + minor).min(BUCKETS - 1)
    }

    /// Lower bound (in nanoseconds) of bucket `i` — the conservative
    /// value quantiles report.
    fn bucket_floor(i: usize) -> u64 {
        let major = i / SUBBUCKETS;
        let minor = (i % SUBBUCKETS) as u64;
        let span_lo = 1u64 << major;
        span_lo + span_lo * minor / SUBBUCKETS as u64
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) of recorded latencies, resolved
    /// to the containing bucket's floor. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based ceil as in the
        // nearest-rank definition.
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Duration::from_nanos(Self::bucket_floor(i)));
            }
        }
        Some(Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed)))
    }

    /// Add every observation recorded in `other` into `self`,
    /// bucket-wise — the cross-shard merge a sharded engine uses to
    /// report one fleet-wide latency distribution next to the
    /// per-shard ones. Concurrent `record`s on either histogram are
    /// safe; the merge sees each observation at most once.
    pub fn absorb(&self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let v = src.load(Ordering::Relaxed);
            if v > 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.total_nanos.fetch_add(other.total_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_nanos.fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Consistent point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let total_nanos = self.total_nanos.load(Ordering::Relaxed);
        let mean = total_nanos.checked_div(count).map_or(Duration::ZERO, Duration::from_nanos);
        HistogramSnapshot {
            count,
            total: Duration::from_nanos(total_nanos),
            mean,
            p50: self.quantile(0.50).unwrap_or(Duration::ZERO),
            p90: self.quantile(0.90).unwrap_or(Duration::ZERO),
            p99: self.quantile(0.99).unwrap_or(Duration::ZERO),
            max: Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// A fixed-size family of [`LatencyHistogram`]s indexed by a small
/// integer — one per serving shard, worker, or priority class. Each
/// member records independently (same relaxed-atomic hot path);
/// [`HistogramVec::merged`] folds them into one distribution for
/// fleet-wide percentiles, and per-member snapshots expose stragglers.
#[derive(Debug)]
pub struct HistogramVec {
    members: Vec<LatencyHistogram>,
}

impl HistogramVec {
    /// A family of `len` empty histograms.
    pub fn new(len: usize) -> Self {
        HistogramVec { members: (0..len).map(|_| LatencyHistogram::new()).collect() }
    }

    /// Number of member histograms.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the family has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Record one observation into member `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn record(&self, i: usize, latency: Duration) {
        self.members[i].record(latency);
    }

    /// The member histogram at `i`.
    pub fn member(&self, i: usize) -> &LatencyHistogram {
        &self.members[i]
    }

    /// Snapshot of member `i`.
    pub fn snapshot(&self, i: usize) -> HistogramSnapshot {
        self.members[i].snapshot()
    }

    /// All observations across every member, merged into one
    /// distribution.
    pub fn merged(&self) -> HistogramSnapshot {
        let all = LatencyHistogram::new();
        for m in &self.members {
            all.absorb(m);
        }
        all.snapshot()
    }
}

/// A concurrent histogram of ratios in `[0, 1]`, quantized to whole
/// percentage points — the shape a per-request cache hit ratio has.
/// Same relaxed-atomic hot path as [`LatencyHistogram`], but with 101
/// uniform buckets (one per percent) instead of log-spaced nanosecond
/// buckets, so the interesting endpoints (all-miss at 0%, all-hit at
/// 100%) are exact.
#[derive(Debug)]
pub struct RatioHistogram {
    /// `buckets[p]` counts observations that rounded to `p` percent.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed ratios in basis points (1/10,000), for the mean.
    total_bp: AtomicU64,
}

impl Default for RatioHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl RatioHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        RatioHistogram {
            buckets: (0..101).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            total_bp: AtomicU64::new(0),
        }
    }

    /// Record one ratio observation (clamped to `[0, 1]`; NaN counts
    /// as 0).
    pub fn record(&self, ratio: f64) {
        let r = if ratio.is_finite() { ratio.clamp(0.0, 1.0) } else { 0.0 };
        let pct = (r * 100.0).round() as usize;
        self.buckets[pct.min(100)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_bp.fetch_add((r * 10_000.0).round() as u64, Ordering::Relaxed);
    }

    /// Record `part` out of `whole` (e.g. hits out of requested rows).
    /// `whole == 0` records nothing.
    pub fn record_fraction(&self, part: u64, whole: u64) {
        if whole > 0 {
            self.record(part as f64 / whole as f64);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile of recorded ratios, resolved to its percent
    /// bucket. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (p, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(p as f64 / 100.0);
            }
        }
        Some(1.0)
    }

    /// Consistent point-in-time summary.
    pub fn snapshot(&self) -> RatioSnapshot {
        let count = self.count();
        let mean = if count == 0 {
            0.0
        } else {
            self.total_bp.load(Ordering::Relaxed) as f64 / 10_000.0 / count as f64
        };
        RatioSnapshot {
            count,
            mean,
            p50: self.quantile(0.50).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
        }
    }
}

/// Point-in-time ratio summary produced by [`RatioHistogram::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Arithmetic mean ratio.
    pub mean: f64,
    /// Median ratio.
    pub p50: f64,
    /// 99th-percentile ratio.
    pub p99: f64,
}

impl std::fmt::Display for RatioSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}% p50={:.0}% p99={:.0}%",
            self.count,
            self.mean * 100.0,
            self.p50 * 100.0,
            self.p99 * 100.0
        )
    }
}

/// Point-in-time latency summary produced by
/// [`LatencyHistogram::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all observations (the Prometheus `_sum` series;
    /// `mean` is this divided by `count`, truncated to nanoseconds).
    pub total: Duration,
    /// Arithmetic mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 90th-percentile latency.
    pub p90: Duration,
    /// 99th-percentile latency — the serving SLO number.
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

impl HistogramSnapshot {
    /// Requests per second over `elapsed` wall-clock time.
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.count as f64 / elapsed.as_secs_f64()
        }
    }
}

impl std::fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3?} p50={:.3?} p90={:.3?} p99={:.3?} max={:.3?}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
        assert_eq!(h.snapshot().p99, Duration::ZERO);
    }

    #[test]
    fn single_observation_dominates_all_quantiles() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        for q in [s.p50, s.p90, s.p99] {
            // Bucket floor is within ~19% below the true value.
            assert!(q <= Duration::from_micros(100));
            assert!(q >= Duration::from_micros(80), "{q:?}");
        }
    }

    #[test]
    fn quantiles_order_and_bound() {
        let h = LatencyHistogram::new();
        // 98 fast observations and 2 slow ones: the nearest-rank p99
        // (rank 99 of 100) must land in the slow bucket.
        for _ in 0..98 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(10));
        h.record(Duration::from_millis(10));
        let s = h.snapshot();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p50 < Duration::from_micros(11));
        assert!(s.p99 >= Duration::from_millis(8), "p99 {:?}", s.p99);
        assert!(s.max >= Duration::from_millis(10));
    }

    #[test]
    fn mean_tracks_total() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(30));
        let s = h.snapshot();
        assert_eq!(s.mean, Duration::from_micros(20));
        assert_eq!(s.total, Duration::from_micros(40), "sum is exact, not mean*count");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(Duration::from_nanos(100 + t * 13 + i));
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn throughput_from_snapshot() {
        let h = LatencyHistogram::new();
        for _ in 0..500 {
            h.record(Duration::from_micros(1));
        }
        let rps = h.snapshot().throughput(Duration::from_secs(2));
        assert!((rps - 250.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_merges_counts_mean_and_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(30));
        b.record(Duration::from_millis(5));
        a.absorb(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert!(s.max >= Duration::from_millis(5));
        // Mean of 10us + 30us + 5000us.
        assert_eq!(s.mean, Duration::from_nanos((10_000 + 30_000 + 5_000_000) / 3));
        // The donor is untouched.
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn histogram_vec_tracks_members_and_merges() {
        let v = HistogramVec::new(3);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        v.record(0, Duration::from_micros(10));
        v.record(0, Duration::from_micros(10));
        v.record(2, Duration::from_millis(2));
        assert_eq!(v.snapshot(0).count, 2);
        assert_eq!(v.snapshot(1).count, 0);
        assert_eq!(v.member(2).count(), 1);
        let merged = v.merged();
        assert_eq!(merged.count, 3);
        assert!(merged.max >= Duration::from_millis(2), "straggler member dominates max");
    }

    #[test]
    fn ratio_histogram_tracks_endpoints_exactly() {
        let h = RatioHistogram::new();
        assert!(h.quantile(0.5).is_none());
        for _ in 0..9 {
            h.record(1.0);
        }
        h.record(0.0);
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert!((s.mean - 0.9).abs() < 1e-9);
        assert_eq!(s.p50, 1.0, "9 of 10 observations are all-hit");
        assert_eq!(s.p99, 1.0);
        assert_eq!(h.quantile(0.05), Some(0.0), "the all-miss request is exact");
    }

    #[test]
    fn ratio_fraction_and_clamping() {
        let h = RatioHistogram::new();
        h.record_fraction(3, 4);
        h.record_fraction(0, 0); // no-op
        h.record(7.5); // clamped to 1.0
        h.record(f64::NAN); // counts as 0
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(h.quantile(0.4), Some(0.75));
        assert_eq!(s.p99, 1.0);
    }

    #[test]
    fn bucket_floor_is_monotone_and_below_members() {
        let mut prev = 0;
        for i in 0..BUCKETS {
            let f = LatencyHistogram::bucket_floor(i);
            assert!(f >= prev, "floor not monotone at {i}");
            prev = f;
        }
        for nanos in [1u64, 2, 3, 100, 1023, 1024, 1025, 1_000_000, 123_456_789] {
            let idx = LatencyHistogram::bucket_index(nanos);
            assert!(LatencyHistogram::bucket_floor(idx) <= nanos, "floor above member {nanos}");
        }
    }
}
