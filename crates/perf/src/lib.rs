//! Performance instrumentation for the FusedMM benchmark harness.
//!
//! * [`memtrack`] — a counting global allocator measuring live and peak
//!   heap bytes, used to regenerate the memory-consumption experiment
//!   (paper Fig. 10b) and to enforce the harness's out-of-memory policy
//!   (the `×` entries of Table VI);
//! * [`timer`] — repetition timing helpers ("we measure the time for 10
//!   iterations and report the average time", §V-A);
//! * [`stream`] — a STREAM-triad memory bandwidth measurement, the roof
//!   of the paper's roofline plot (Fig. 7, "The STREAM bandwidth on
//!   this server is 100 GB/s");
//! * [`roofline`] — Eq. 4's arithmetic-intensity model and the
//!   attainable-GFLOP/s bound;
//! * [`flops`] — floating-point-operation counts per kernel pattern;
//! * [`hist`] — a lock-free log-bucketed latency histogram (p50/p99 and
//!   throughput for the serving engine);
//! * [`gauge`] — a concurrent up/down counter with a high-water mark
//!   (in-flight request accounting for the non-blocking serving path);
//! * [`registry`] — a pull-model [`MetricsRegistry`] that enumerates
//!   every engine/shard/cache/kernel metric as labeled samples and
//!   exports Prometheus text format and JSON;
//! * [`trace`] — sampled request-lifecycle tracing into per-thread
//!   lock-free span rings, dumpable as chrome://tracing JSON.

pub mod flops;
pub mod gauge;
pub mod hist;
pub mod memtrack;
pub mod registry;
pub mod roofline;
pub mod stream;
pub mod timer;
pub mod trace;

pub use gauge::{Gauge, GaugeGuard, GaugeSnapshot};
pub use hist::{HistogramSnapshot, HistogramVec, LatencyHistogram, RatioHistogram, RatioSnapshot};
pub use memtrack::CountingAllocator;
pub use registry::{parse_prometheus, MetricValue, MetricsRegistry, MetricsSnapshot, Sample};
pub use roofline::{arithmetic_intensity, attainable_gflops};
pub use timer::{time_iterations, TimingStats};
pub use trace::{SpanCtx, SpanKind, SpanRecord, Tracer};
