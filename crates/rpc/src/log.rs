//! The coordinator's replicated epoch log: every feature write as an
//! ordered, replayable record stream, with snapshot compaction so a
//! late joiner catches up in O(state), not O(history).
//!
//! The coordinator [`ship`](EpochLog::ship)s each
//! [`EpochRecord`] here before any worker sees it; the per-worker
//! connection managers read [`catch_up`](EpochLog::catch_up) slices
//! when a worker (re)connects. The log folds records into a rolling
//! base snapshot once the tail grows past the compaction cap, so its
//! memory footprint is bounded by `2 × state + cap × record` no matter
//! how many epochs have ever been minted.

use std::collections::VecDeque;

use fusedmm_serve::remote::EpochRecord;
use fusedmm_sparse::Dense;
use parking_lot::Mutex;

/// Records kept in the tail before folding into the base snapshot.
/// Catch-up for a worker lagging within the tail replays deltas
/// (cheap); one lagging past it gets the snapshot (complete).
const COMPACT_AFTER: usize = 64;

struct Inner {
    /// Full state at `base_epoch` — what a fresh joiner receives.
    base: Option<(u64, Dense, Dense)>,
    /// Records minted after `base_epoch`, epoch-ordered.
    tail: VecDeque<EpochRecord>,
}

/// The append-only (logically) epoch log. Thread-safe; `ship` and
/// `catch_up` may race freely — a record is either in the slice a
/// reconnecting worker receives or ordered after it on the live
/// stream, never both, provided the caller serializes per-connection
/// delivery (the client's per-worker queue lock does).
pub struct EpochLog {
    inner: Mutex<Inner>,
}

impl EpochLog {
    /// An empty log (no epochs shipped yet).
    pub fn new() -> EpochLog {
        EpochLog { inner: Mutex::new(Inner { base: None, tail: VecDeque::new() }) }
    }

    /// Append one record, folding the tail into the base snapshot when
    /// it grows past the compaction cap.
    pub fn ship(&self, record: &EpochRecord) {
        let mut inner = self.inner.lock();
        match record {
            EpochRecord::Snapshot { epoch, x, y } => {
                // A snapshot *is* a base: everything before it is
                // subsumed.
                inner.base = Some((*epoch, x.clone(), y.clone()));
                inner.tail.clear();
            }
            other => inner.tail.push_back(other.clone()),
        }
        if inner.tail.len() > COMPACT_AFTER {
            inner.compact();
        }
    }

    /// The latest epoch in the log, or `None` before the first ship.
    pub fn latest(&self) -> Option<u64> {
        let inner = self.inner.lock();
        inner.tail.back().map(EpochRecord::epoch).or(inner.base.as_ref().map(|b| b.0))
    }

    /// The record slice that brings a worker to the head of the log:
    /// `from = None` (a fresh replica, or one lagging past the base)
    /// gets the base snapshot plus the tail; `from = Some(e)` with `e`
    /// at or after the base epoch gets only the tail records minting
    /// epochs `> e`. Empty when the worker is already current (or the
    /// log is).
    pub fn catch_up(&self, from: Option<u64>) -> Vec<EpochRecord> {
        let inner = self.inner.lock();
        let base_epoch = inner.base.as_ref().map(|b| b.0);
        match (from, base_epoch) {
            (Some(e), Some(b)) if e >= b => {
                inner.tail.iter().filter(|r| r.epoch() > e).cloned().collect()
            }
            (Some(e), None) => inner.tail.iter().filter(|r| r.epoch() > e).cloned().collect(),
            (_, Some(_)) => {
                let (epoch, x, y) = inner.base.as_ref().expect("checked");
                let mut out =
                    vec![EpochRecord::Snapshot { epoch: *epoch, x: x.clone(), y: y.clone() }];
                out.extend(inner.tail.iter().cloned());
                out
            }
            (None, None) => inner.tail.iter().cloned().collect(),
        }
    }
}

impl Default for EpochLog {
    fn default() -> EpochLog {
        EpochLog::new()
    }
}

impl Inner {
    /// Fold the whole tail into the base snapshot. Requires a base (a
    /// delta tail without a base can't be folded — keep it).
    fn compact(&mut self) {
        let Some((epoch, x, y)) = self.base.take() else {
            return;
        };
        let (mut epoch, mut x, mut y) = (epoch, x, y);
        for record in self.tail.drain(..) {
            match record {
                EpochRecord::Publish { epoch: e, x: nx, y: ny }
                | EpochRecord::Snapshot { epoch: e, x: nx, y: ny } => {
                    epoch = e;
                    x = nx;
                    y = ny;
                }
                EpochRecord::Delta { epoch: e, rows, x_rows, y_rows } => {
                    epoch = e;
                    for (i, &r) in rows.iter().enumerate() {
                        x.row_mut(r).copy_from_slice(x_rows.row(i));
                        y.row_mut(r).copy_from_slice(y_rows.row(i));
                    }
                }
            }
        }
        self.base = Some((epoch, x, y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, fill: f32) -> EpochRecord {
        EpochRecord::Snapshot { epoch, x: Dense::filled(4, 2, fill), y: Dense::filled(4, 2, fill) }
    }

    fn delta(epoch: u64, row: usize, fill: f32) -> EpochRecord {
        EpochRecord::Delta {
            epoch,
            rows: vec![row],
            x_rows: Dense::filled(1, 2, fill),
            y_rows: Dense::filled(1, 2, fill),
        }
    }

    #[test]
    fn fresh_gets_snapshot_plus_tail_lagging_gets_tail() {
        let log = EpochLog::new();
        log.ship(&snap(0, 0.0));
        log.ship(&delta(1, 0, 1.0));
        log.ship(&delta(2, 1, 2.0));
        assert_eq!(log.latest(), Some(2));

        let fresh = log.catch_up(None);
        assert_eq!(fresh.len(), 3);
        assert!(matches!(fresh[0], EpochRecord::Snapshot { epoch: 0, .. }));
        assert_eq!(fresh[2].epoch(), 2);

        let lagging = log.catch_up(Some(1));
        assert_eq!(lagging.len(), 1);
        assert_eq!(lagging[0].epoch(), 2);

        assert!(log.catch_up(Some(2)).is_empty());
    }

    #[test]
    fn compaction_folds_deltas_into_the_base() {
        let log = EpochLog::new();
        log.ship(&snap(0, 0.0));
        for e in 1..=(COMPACT_AFTER as u64 + 10) {
            log.ship(&delta(e, (e as usize) % 4, e as f32));
        }
        let records = log.catch_up(None);
        // Post-compaction: one snapshot base plus a short tail, and
        // the fold applied every delta.
        let EpochRecord::Snapshot { epoch, x, .. } = &records[0] else {
            panic!("compacted log starts with a snapshot");
        };
        assert!(*epoch >= COMPACT_AFTER as u64, "base advanced past the fold");
        assert!(records.len() <= COMPACT_AFTER + 1);
        // Row touched by the last folded delta carries its fill.
        let last_folded = *epoch;
        assert_eq!(x.row((last_folded as usize) % 4)[0], last_folded as f32);
        assert_eq!(log.latest(), Some(COMPACT_AFTER as u64 + 10));
    }

    #[test]
    fn catch_up_from_before_the_base_falls_back_to_snapshot() {
        let log = EpochLog::new();
        log.ship(&snap(10, 1.0));
        log.ship(&delta(11, 0, 2.0));
        let records = log.catch_up(Some(3));
        assert!(matches!(records[0], EpochRecord::Snapshot { epoch: 10, .. }));
        assert_eq!(records.len(), 2);
    }
}
