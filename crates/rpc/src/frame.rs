//! Length-prefixed binary framing over any byte stream.
//!
//! The wire unit is a *frame*:
//!
//! ```text
//! [len: u32 LE] [request_id: u64 LE] [kind: u8] [payload: len - 9 bytes]
//! ```
//!
//! `len` counts everything after itself (header + payload), so a
//! reader can pull exactly one frame off the stream without knowing
//! any message schema — the schema lives one layer up, in
//! [`proto`](crate::proto). Frames work over any `Read`/`Write` pair:
//! unix sockets today, TCP tomorrow, `Vec<u8>` in tests.
//!
//! `request_id` correlates replies with requests so responses may
//! complete out of order; `kind` tags the payload schema (including
//! the typed error frame) so a reply's success/failure is visible
//! before decoding.

use std::io::{self, Read, Write};

/// Frame header bytes after the length word: request id + kind.
pub const HEADER: usize = 8 + 1;

/// Hard ceiling on one frame's `len` word (1 GiB). Anything larger is
/// rejected *before* allocation — a garbage length must not become an
/// allocation request.
pub const MAX_FRAME: u32 = 1 << 30;

/// One wire frame, header decoded, payload raw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Correlates a reply with its request. Requests mint fresh ids;
    /// replies echo them. Streamed records (the epoch log) use id 0.
    pub request_id: u64,
    /// Payload schema tag — see the `KIND_*` constants in
    /// [`proto`](crate::proto).
    pub kind: u8,
    /// Schema-tagged payload bytes.
    pub payload: Vec<u8>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(io::Error),
    /// The stream ended cleanly on a frame boundary — not an error for
    /// a serve loop, but distinct from a mid-frame truncation.
    Closed,
    /// The length word exceeds [`MAX_FRAME`] or undercuts the header.
    BadLength(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Closed => write!(f, "stream closed"),
            FrameError::BadLength(len) => write!(f, "frame length {len} out of bounds"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Write one frame. The caller owns flushing (batch several frames,
/// then flush once).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let len = HEADER + frame.payload.len();
    assert!(len <= MAX_FRAME as usize, "frame payload exceeds MAX_FRAME");
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&frame.request_id.to_le_bytes())?;
    w.write_all(&[frame.kind])?;
    w.write_all(&frame.payload)?;
    Ok(())
}

/// Read exactly one frame. A clean EOF *before* the length word is
/// [`FrameError::Closed`]; an EOF anywhere inside a frame is an i/o
/// error (the peer died mid-send).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len < HEADER as u32 || len > MAX_FRAME {
        return Err(FrameError::BadLength(len));
    }
    let mut id_bytes = [0u8; 8];
    r.read_exact(&mut id_bytes)?;
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len as usize - HEADER];
    r.read_exact(&mut payload)?;
    Ok(Frame { request_id: u64::from_le_bytes(id_bytes), kind: kind[0], payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        let frames = [
            Frame { request_id: 0, kind: 1, payload: vec![] },
            Frame { request_id: u64::MAX, kind: 255, payload: vec![7; 300] },
            Frame { request_id: 42, kind: 3, payload: (0..=255).collect() },
        ];
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0; 64]);
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::BadLength(_))));
        // Undersized too: a length that can't even hold the header.
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::BadLength(3))));
    }

    #[test]
    fn truncation_mid_frame_is_io_not_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame { request_id: 9, kind: 2, payload: vec![1, 2, 3, 4] })
            .unwrap();
        for cut in 1..buf.len() {
            let r = read_frame(&mut &buf[..cut]);
            if cut < 4 {
                // A partial length word is indistinguishable from a
                // clean close to `read_exact`; either way, no frame.
                assert!(matches!(r, Err(FrameError::Closed)), "cut at {cut}");
            } else {
                assert!(matches!(r, Err(FrameError::Io(_))), "cut at {cut}");
            }
        }
    }
}
