//! The message schema over [`frame`](crate::frame): a hand-rolled
//! little-endian codec, no external serializer.
//!
//! Every message encodes to one frame payload tagged by a `KIND_*`
//! byte. `f32` matrices cross the wire as raw little-endian bit
//! patterns (`to_le_bytes`/`from_le_bytes`), so a row decoded on the
//! other side is **bit-identical** to the row encoded — the
//! multi-process bit-identity guarantee rests on this, not on any
//! decimal round-trip.
//!
//! Decoding is total: any byte slice produces either a message or a
//! typed [`DecodeError`], never a panic and never an
//! attacker-controlled allocation (element counts are validated
//! against the bytes actually present before any `Vec` is sized).

use std::time::{Duration, Instant};

use fusedmm_serve::remote::EpochRecord;
use fusedmm_serve::Quality;
use fusedmm_sparse::Dense;

/// Protocol revision, checked at handshake. Bump on any wire change.
pub const PROTO_VERSION: u32 = 1;

/// Handshake: worker → coordinator, first frame on every connection.
pub const KIND_HELLO: u8 = 1;
/// One embed part: coordinator → worker.
pub const KIND_EMBED: u8 = 2;
/// Embed reply: the part's rows.
pub const KIND_EMBED_OK: u8 = 3;
/// Typed failure reply to an embed or score request.
pub const KIND_PART_ERR: u8 = 4;
/// One score part: coordinator → worker.
pub const KIND_SCORE: u8 = 5;
/// Score reply: the part's scores.
pub const KIND_SCORE_OK: u8 = 6;
/// One replicated epoch-log record: coordinator → worker.
pub const KIND_EPOCH: u8 = 7;
/// Worker's applied-epoch acknowledgement (drives the lag gauge).
pub const KIND_EPOCH_ACK: u8 = 8;

/// Why a payload failed to decode. Produced, never panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the field being read.
    Eof,
    /// The payload has bytes left after a complete message.
    Trailing,
    /// A tag byte (`what` names the field) held an unknown value.
    BadTag(&'static str, u64),
    /// A length field promises more elements than the payload holds.
    BadCount(&'static str),
    /// A string field is not UTF-8.
    BadUtf8,
    /// The frame's kind byte names no known message.
    UnknownKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Eof => write!(f, "payload truncated"),
            DecodeError::Trailing => write!(f, "trailing bytes after message"),
            DecodeError::BadTag(what, tag) => write!(f, "bad {what} tag {tag}"),
            DecodeError::BadCount(what) => write!(f, "{what} count exceeds payload"),
            DecodeError::BadUtf8 => write!(f, "string is not utf-8"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
        }
    }
}

/// The typed failure a worker reports for one part — the wire image of
/// the worker-side error taxonomy. The coordinator maps it onto the
/// front end's `PartOutcome`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The piece expired past its deadline.
    Expired,
    /// The band engine failed the piece (panicked launch, shutdown).
    Panicked,
    /// The request pinned an epoch outside the replica's history.
    EpochUnavailable,
    /// Anything else, with a human-readable detail string.
    Other(String),
}

/// One decoded message. `encode` and [`decode`] are exact inverses for
/// every value (see the round-trip proptests in `tests/rpc.rs`).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker self-description, first frame after accept: which shard
    /// it hosts, its band, its dimensions, its current epoch,
    /// whether its features are boot placeholders (`fresh`), and the
    /// SIMD backend label it serves with.
    Hello {
        /// [`PROTO_VERSION`] of the sender.
        proto_version: u32,
        /// The shard index this worker hosts.
        shard: u32,
        /// First global row of the worker's band.
        band_start: u64,
        /// Rows in the band.
        band_len: u64,
        /// Rows of the global Y column space.
        y_rows: u64,
        /// Embedding dimension.
        d: u32,
        /// The replica's current epoch.
        epoch: u64,
        /// True when the replica holds boot placeholders (needs a
        /// snapshot regardless of its epoch number).
        fresh: bool,
        /// SIMD backend label (`active_backend().label()`), reported
        /// so a heterogeneous deployment is visible at connect time.
        backend: String,
    },
    /// One embed part at a pinned epoch.
    Embed {
        /// The epoch the coordinator pinned.
        epoch: u64,
        /// Serving tier for the part.
        quality: Quality,
        /// Deadline as *remaining* microseconds at send time (wall
        /// clocks don't cross process boundaries), `None` = no
        /// deadline.
        deadline_us: Option<u64>,
        /// Global node ids (within the worker's band).
        nodes: Vec<u64>,
    },
    /// Embed reply: one row per requested node, request order.
    EmbedOk {
        /// The computed rows.
        rows: Dense,
    },
    /// Typed failure reply (embed or score).
    PartErr {
        /// What failed.
        err: WireError,
    },
    /// One score part at a pinned epoch.
    Score {
        /// The epoch the coordinator pinned.
        epoch: u64,
        /// `(u, v)` pairs; sources within the worker's band.
        pairs: Vec<(u64, u64)>,
    },
    /// Score reply, request order.
    ScoreOk {
        /// One score per pair.
        scores: Vec<f32>,
    },
    /// One replicated epoch-log record.
    Epoch(EpochRecord),
    /// The worker applied the log through `epoch`.
    EpochAck {
        /// The replica's epoch after applying.
        epoch: u64,
    },
}

impl Msg {
    /// The frame kind byte for this message.
    pub fn kind(&self) -> u8 {
        match self {
            Msg::Hello { .. } => KIND_HELLO,
            Msg::Embed { .. } => KIND_EMBED,
            Msg::EmbedOk { .. } => KIND_EMBED_OK,
            Msg::PartErr { .. } => KIND_PART_ERR,
            Msg::Score { .. } => KIND_SCORE,
            Msg::ScoreOk { .. } => KIND_SCORE_OK,
            Msg::Epoch(_) => KIND_EPOCH,
            Msg::EpochAck { .. } => KIND_EPOCH_ACK,
        }
    }

    /// Encode to a frame payload (pair with [`Msg::kind`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Msg::Hello {
                proto_version,
                shard,
                band_start,
                band_len,
                y_rows,
                d,
                epoch,
                fresh,
                backend,
            } => {
                put_u32(&mut out, *proto_version);
                put_u32(&mut out, *shard);
                put_u64(&mut out, *band_start);
                put_u64(&mut out, *band_len);
                put_u64(&mut out, *y_rows);
                put_u32(&mut out, *d);
                put_u64(&mut out, *epoch);
                out.push(u8::from(*fresh));
                put_str(&mut out, backend);
            }
            Msg::Embed { epoch, quality, deadline_us, nodes } => {
                put_u64(&mut out, *epoch);
                put_quality(&mut out, *quality);
                put_u64(&mut out, deadline_us.map_or(u64::MAX, |us| us.min(u64::MAX - 1)));
                put_u64(&mut out, nodes.len() as u64);
                for &n in nodes {
                    put_u64(&mut out, n);
                }
            }
            Msg::EmbedOk { rows } => put_dense(&mut out, rows),
            Msg::PartErr { err } => match err {
                WireError::Expired => out.push(0),
                WireError::Panicked => out.push(1),
                WireError::EpochUnavailable => out.push(2),
                WireError::Other(detail) => {
                    out.push(3);
                    put_str(&mut out, detail);
                }
            },
            Msg::Score { epoch, pairs } => {
                put_u64(&mut out, *epoch);
                put_u64(&mut out, pairs.len() as u64);
                for &(u, v) in pairs {
                    put_u64(&mut out, u);
                    put_u64(&mut out, v);
                }
            }
            Msg::ScoreOk { scores } => {
                put_u64(&mut out, scores.len() as u64);
                for &s in scores {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Msg::Epoch(record) => match record {
                EpochRecord::Publish { epoch, x, y } => {
                    out.push(0);
                    put_u64(&mut out, *epoch);
                    put_dense(&mut out, x);
                    put_dense(&mut out, y);
                }
                EpochRecord::Delta { epoch, rows, x_rows, y_rows } => {
                    out.push(1);
                    put_u64(&mut out, *epoch);
                    put_u64(&mut out, rows.len() as u64);
                    for &r in rows {
                        put_u64(&mut out, r as u64);
                    }
                    put_dense(&mut out, x_rows);
                    put_dense(&mut out, y_rows);
                }
                EpochRecord::Snapshot { epoch, x, y } => {
                    out.push(2);
                    put_u64(&mut out, *epoch);
                    put_dense(&mut out, x);
                    put_dense(&mut out, y);
                }
            },
            Msg::EpochAck { epoch } => put_u64(&mut out, *epoch),
        }
        out
    }

    /// The remote deadline reconstructed locally: `deadline_us`
    /// remaining at send time becomes `now + remaining` at receipt
    /// (transit time eats into the budget on the sender's clock, which
    /// is the conservative direction).
    pub fn deadline_from_us(deadline_us: Option<u64>) -> Option<Instant> {
        deadline_us.map(|us| Instant::now() + Duration::from_micros(us))
    }
}

/// Decode one frame payload of the given kind.
pub fn decode(kind: u8, payload: &[u8]) -> Result<Msg, DecodeError> {
    let mut rd = Rd { b: payload, pos: 0 };
    let msg = match kind {
        KIND_HELLO => Msg::Hello {
            proto_version: rd.u32()?,
            shard: rd.u32()?,
            band_start: rd.u64()?,
            band_len: rd.u64()?,
            y_rows: rd.u64()?,
            d: rd.u32()?,
            epoch: rd.u64()?,
            fresh: match rd.u8()? {
                0 => false,
                1 => true,
                t => return Err(DecodeError::BadTag("fresh", t as u64)),
            },
            backend: rd.str()?,
        },
        KIND_EMBED => Msg::Embed {
            epoch: rd.u64()?,
            quality: rd.quality()?,
            deadline_us: match rd.u64()? {
                u64::MAX => None,
                us => Some(us),
            },
            nodes: rd.u64_vec("nodes")?,
        },
        KIND_EMBED_OK => Msg::EmbedOk { rows: rd.dense()? },
        KIND_PART_ERR => Msg::PartErr {
            err: match rd.u8()? {
                0 => WireError::Expired,
                1 => WireError::Panicked,
                2 => WireError::EpochUnavailable,
                3 => WireError::Other(rd.str()?),
                t => return Err(DecodeError::BadTag("part error", t as u64)),
            },
        },
        KIND_SCORE => {
            let epoch = rd.u64()?;
            let n = rd.count("pairs", 16)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((rd.u64()?, rd.u64()?));
            }
            Msg::Score { epoch, pairs }
        }
        KIND_SCORE_OK => {
            let n = rd.count("scores", 4)?;
            let mut scores = Vec::with_capacity(n);
            for _ in 0..n {
                scores.push(rd.f32()?);
            }
            Msg::ScoreOk { scores }
        }
        KIND_EPOCH => Msg::Epoch(match rd.u8()? {
            0 => EpochRecord::Publish { epoch: rd.u64()?, x: rd.dense()?, y: rd.dense()? },
            1 => {
                let epoch = rd.u64()?;
                let rows = rd.u64_vec("delta rows")?.into_iter().map(|r| r as usize).collect();
                EpochRecord::Delta { epoch, rows, x_rows: rd.dense()?, y_rows: rd.dense()? }
            }
            2 => EpochRecord::Snapshot { epoch: rd.u64()?, x: rd.dense()?, y: rd.dense()? },
            t => return Err(DecodeError::BadTag("epoch record", t as u64)),
        }),
        KIND_EPOCH_ACK => Msg::EpochAck { epoch: rd.u64()? },
        k => return Err(DecodeError::UnknownKind(k)),
    };
    if rd.pos != payload.len() {
        return Err(DecodeError::Trailing);
    }
    Ok(msg)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_quality(out: &mut Vec<u8>, q: Quality) {
    match q {
        Quality::Exact => out.push(0),
        Quality::TopKNeighbors(k) => {
            out.push(1);
            put_u32(out, k as u32);
        }
        Quality::CachedOnly => out.push(2),
    }
}

fn put_dense(out: &mut Vec<u8>, m: &Dense) {
    put_u32(out, m.nrows() as u32);
    put_u32(out, m.ncols() as u32);
    for &v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over a payload slice.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Rd<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Eof)?;
        if end > self.b.len() {
            return Err(DecodeError::Eof);
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// An element count, validated against the bytes remaining
    /// (`elem_size` bytes per element) *before* any allocation — a
    /// garbage count must not size a `Vec`.
    fn count(&mut self, what: &'static str, elem_size: usize) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        let remaining = (self.b.len() - self.pos) as u64;
        if n.checked_mul(elem_size as u64).is_none_or(|bytes| bytes > remaining) {
            return Err(DecodeError::BadCount(what));
        }
        Ok(n as usize)
    }

    fn u64_vec(&mut self, what: &'static str) -> Result<Vec<u64>, DecodeError> {
        let n = self.count(what, 8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.count("string", 1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn quality(&mut self) -> Result<Quality, DecodeError> {
        match self.u8()? {
            0 => Ok(Quality::Exact),
            1 => Ok(Quality::TopKNeighbors(self.u32()? as usize)),
            2 => Ok(Quality::CachedOnly),
            t => Err(DecodeError::BadTag("quality", t as u64)),
        }
    }

    fn dense(&mut self) -> Result<Dense, DecodeError> {
        let nrows = self.u32()? as usize;
        let ncols = self.u32()? as usize;
        let n = nrows
            .checked_mul(ncols)
            .filter(|&n| n.checked_mul(4).is_some_and(|b| b <= self.b.len() - self.pos))
            .ok_or(DecodeError::BadCount("dense"))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32()?);
        }
        Dense::from_rows(nrows, ncols, &data).map_err(|_| DecodeError::BadCount("dense"))
    }
}
