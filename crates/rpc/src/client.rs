//! The coordinator-side transport: [`RpcTransport`] implements
//! [`ShardTransport`] over one framed unix-socket connection per
//! worker, with reconnect-and-catch-up, per-worker telemetry, and
//! transport-level fault injection.
//!
//! Per worker, three moving parts:
//!
//! * a **manager thread** — connects, reads the worker's `Hello`,
//!   computes the epoch-log catch-up slice for the worker's reported
//!   epoch (snapshot + tail for a fresh or far-lagging replica, tail
//!   only otherwise), then becomes the connection's writer, draining
//!   the outgoing frame queue; on any failure it severs the
//!   connection, fails every pending request typed (the front end's
//!   retry machinery takes over), and reconnects with backoff;
//! * a **reader thread** per connection — decodes reply frames and
//!   resolves them against the pending map by request id (replies
//!   complete out of order), records round-trip latencies, and tracks
//!   the worker's epoch acknowledgements for the lag gauge;
//! * the **queue** — one FIFO of outbound frames. Epoch records and
//!   requests ride the same queue, which *is* the ordering guarantee:
//!   a record shipped before a request is written before it.
//!
//! Exactly-once log delivery across reconnects: a transport-wide
//! `ship_order` mutex makes `ship` (append to log + enqueue to every
//! connected worker) and reconnect catch-up (snapshot the log +
//! enqueue + mark connected) atomic with respect to each other, so a
//! record is either in a connection's catch-up slice or enqueued live
//! after it — never both, never neither.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fusedmm_core::active_backend;
use fusedmm_perf::hist::LatencyHistogram;
use fusedmm_perf::registry::{MetricsRegistry, Sample};
use fusedmm_serve::remote::{EpochRecord, PartOutcome, PartSlot, ShardTransport};
use fusedmm_serve::{FaultPlan, Quality, ServeError};

use crate::frame::{read_frame, write_frame, Frame};
use crate::log::EpochLog;
use crate::proto::{decode, Msg, WireError, PROTO_VERSION};

/// How the transport connects and behaves under failure.
pub struct RpcConfig {
    /// One unix-socket path per shard; index order defines shard
    /// numbering and must match each worker's `Hello`.
    pub paths: Vec<PathBuf>,
    /// How long [`RpcTransport::connect`] waits for every worker's
    /// handshake before giving up.
    pub connect_timeout: Duration,
    /// Backoff between reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Transport fault injection (`drop_conn_every` severs the
    /// connection on every n-th request frame, `delay_frame_us` stalls
    /// each frame write); `None` falls back to `FUSEDMM_FAULT_PLAN`.
    pub fault: Option<Arc<FaultPlan>>,
}

impl RpcConfig {
    /// Defaults for a worker set on the given sockets.
    pub fn new(paths: Vec<PathBuf>) -> RpcConfig {
        RpcConfig {
            paths,
            connect_timeout: Duration::from_secs(30),
            reconnect_backoff: Duration::from_millis(50),
            fault: None,
        }
    }
}

/// What the transport knows about one worker after its handshake.
#[derive(Debug, Clone)]
struct WorkerLayout {
    band_start: u64,
    band_len: u64,
    y_rows: u64,
    d: u32,
}

/// One queued outbound frame.
struct OutFrame {
    frame: Frame,
    /// Request frames (embed/score) count toward the fault plan's
    /// `drop_conn_every` schedule; epoch records don't (severing the
    /// log stream would only test the catch-up path twice).
    is_request: bool,
}

/// Outbound queue + connection state, under one lock.
struct Queue {
    frames: VecDeque<OutFrame>,
    connected: bool,
}

/// A request awaiting its reply frame.
enum Pending {
    Embed { slot: PartSlot, sent: Instant, rows: usize },
    Score { cell: Arc<ScoreCell>, sent: Instant },
}

/// One-shot synchronous reply cell for a score request.
struct ScoreCell {
    slot: Mutex<Option<Result<Vec<f32>, ServeError>>>,
    cv: Condvar,
}

impl ScoreCell {
    fn resolve(&self, result: Result<Vec<f32>, ServeError>) {
        *self.slot.lock().expect("score cell") = Some(result);
        self.cv.notify_all();
    }
}

#[derive(Default)]
struct WorkerTelemetry {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    reconnects: AtomicU64,
    rtt: LatencyHistogram,
}

struct WorkerState {
    shard: usize,
    path: PathBuf,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    pending: Mutex<HashMap<u64, Pending>>,
    /// Layout from the first successful handshake (validated against
    /// on every reconnect), plus the handshake rendezvous for
    /// `connect`.
    layout: Mutex<Option<WorkerLayout>>,
    layout_cv: Condvar,
    /// Highest epoch the worker acknowledged applying.
    acked: AtomicU64,
    /// Rows of embed work queued or in flight toward this worker.
    queued_rows: AtomicUsize,
    /// True once any session succeeded — the next handshake is a
    /// *re*connect.
    had_session: AtomicBool,
    telemetry: WorkerTelemetry,
}

impl WorkerState {
    /// Fail every pending request typed and drop queued frames. The
    /// front-end retry/`PartFailed` machinery handles the rest.
    fn fail_all(&self) {
        let drained: Vec<Pending> = {
            let mut pending = self.pending.lock().expect("pending map");
            pending.drain().map(|(_, p)| p).collect()
        };
        for p in drained {
            match p {
                Pending::Embed { slot, rows, .. } => {
                    self.queued_rows.fetch_sub(rows, Ordering::Relaxed);
                    slot.resolve(PartOutcome::Failed);
                }
                Pending::Score { cell, .. } => {
                    cell.resolve(Err(ServeError::PartFailed { shard: Some(self.shard) }));
                }
            }
        }
    }

    /// Mark disconnected and wake the writer.
    fn disconnect(&self) {
        let mut q = self.queue.lock().expect("queue");
        q.connected = false;
        q.frames.clear();
        drop(q);
        self.queue_cv.notify_all();
    }
}

/// Framed-socket [`ShardTransport`]: one connection per worker, the
/// replicated [`EpochLog`] behind `ship`, reconnect-with-catch-up, and
/// per-worker `fusedmm_rpc_*` telemetry.
pub struct RpcTransport {
    workers: Vec<Arc<WorkerState>>,
    log: Arc<EpochLog>,
    /// Serializes `ship` against reconnect catch-up (module docs).
    /// Shared with the manager threads.
    ship_order: Arc<Mutex<()>>,
    next_id: AtomicU64,
    /// Request frames written across all workers — the fault plan's
    /// `drop_conn_every` sequence.
    request_seq: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    boundaries: std::sync::OnceLock<Vec<usize>>,
}

impl RpcTransport {
    /// Connect to every worker and wait for all handshakes, assembling
    /// the shard layout (`boundaries`) from the workers' reported
    /// bands. Fails if any worker's handshake doesn't arrive within
    /// `config.connect_timeout` or the reported bands don't tile a
    /// contiguous row space.
    pub fn connect(config: RpcConfig) -> io::Result<Arc<RpcTransport>> {
        assert!(!config.paths.is_empty(), "at least one worker");
        let fault = config.fault.clone().or_else(FaultPlan::from_env);
        let stop = Arc::new(AtomicBool::new(false));
        let request_seq = Arc::new(AtomicU64::new(0));
        let log = Arc::new(EpochLog::new());
        let ship_order = Arc::new(Mutex::new(()));
        let workers: Vec<Arc<WorkerState>> = config
            .paths
            .iter()
            .enumerate()
            .map(|(shard, path)| {
                Arc::new(WorkerState {
                    shard,
                    path: path.clone(),
                    queue: Mutex::new(Queue { frames: VecDeque::new(), connected: false }),
                    queue_cv: Condvar::new(),
                    pending: Mutex::new(HashMap::new()),
                    layout: Mutex::new(None),
                    layout_cv: Condvar::new(),
                    acked: AtomicU64::new(0),
                    queued_rows: AtomicUsize::new(0),
                    had_session: AtomicBool::new(false),
                    telemetry: WorkerTelemetry::default(),
                })
            })
            .collect();
        let transport = Arc::new(RpcTransport {
            workers,
            log,
            ship_order,
            next_id: AtomicU64::new(1),
            request_seq,
            stop,
            boundaries: std::sync::OnceLock::new(),
        });
        for state in &transport.workers {
            let state = Arc::clone(state);
            let log = Arc::clone(&transport.log);
            let stop = Arc::clone(&transport.stop);
            let seq = Arc::clone(&transport.request_seq);
            let fault = fault.clone();
            let backoff = config.reconnect_backoff;
            let ship_order = Arc::clone(&transport.ship_order);
            std::thread::spawn(move || {
                manage_worker(state, log, stop, seq, fault, backoff, ship_order)
            });
        }
        // Wait for every handshake, then freeze the layout.
        let deadline = Instant::now() + config.connect_timeout;
        let mut layouts = Vec::with_capacity(transport.workers.len());
        for state in &transport.workers {
            let mut slot = state.layout.lock().expect("layout");
            while slot.is_none() {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    transport.shutdown();
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("worker {} handshake timed out", state.shard),
                    ));
                }
                let (s, _) = state.layout_cv.wait_timeout(slot, left).expect("layout wait");
                slot = s;
            }
            layouts.push(slot.clone().expect("present"));
        }
        let mut boundaries = vec![layouts[0].band_start as usize];
        for (s, l) in layouts.iter().enumerate() {
            if l.band_start as usize != *boundaries.last().expect("nonempty") {
                transport.shutdown();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker {s} band does not abut its predecessor"),
                ));
            }
            boundaries.push((l.band_start + l.band_len) as usize);
            if l.d != layouts[0].d || l.y_rows != layouts[0].y_rows {
                transport.shutdown();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker {s} disagrees on dimensions"),
                ));
            }
        }
        transport.boundaries.set(boundaries).expect("boundaries set once, here");
        Ok(transport)
    }

    /// The replicated epoch log (tests inspect catch-up slices).
    pub fn log(&self) -> &Arc<EpochLog> {
        &self.log
    }

    /// Register per-worker transport telemetry: bytes and frames in
    /// and out, round-trip latency, reconnects, and the epoch-log lag
    /// gauge (latest shipped epoch minus the worker's last applied
    /// acknowledgement), all labeled `worker="<shard>"`.
    pub fn register_metrics(self: &Arc<Self>, registry: &MetricsRegistry) {
        let transport = Arc::clone(self);
        registry.register(move |out| {
            for state in &transport.workers {
                let worker = state.shard.to_string();
                let l = |s: Sample| s.label("worker", worker.clone());
                let t = &state.telemetry;
                out.push(l(Sample::counter(
                    "fusedmm_rpc_bytes_sent_total",
                    t.bytes_sent.load(Ordering::Relaxed),
                )));
                out.push(l(Sample::counter(
                    "fusedmm_rpc_bytes_received_total",
                    t.bytes_received.load(Ordering::Relaxed),
                )));
                out.push(l(Sample::counter(
                    "fusedmm_rpc_frames_sent_total",
                    t.frames_sent.load(Ordering::Relaxed),
                )));
                out.push(l(Sample::counter(
                    "fusedmm_rpc_frames_received_total",
                    t.frames_received.load(Ordering::Relaxed),
                )));
                out.push(l(Sample::counter(
                    "fusedmm_rpc_reconnects_total",
                    t.reconnects.load(Ordering::Relaxed),
                )));
                out.push(l(Sample::histogram("fusedmm_rpc_roundtrip_seconds", t.rtt.snapshot())));
                let latest = transport.log.latest().unwrap_or(0);
                let lag = latest.saturating_sub(state.acked.load(Ordering::Relaxed));
                out.push(l(Sample::gauge("fusedmm_rpc_epoch_lag", lag as f64)));
            }
        });
    }

    /// Reconnect count for one worker (smoke tests assert liveness).
    pub fn reconnects(&self, shard: usize) -> u64 {
        self.workers[shard].telemetry.reconnects.load(Ordering::Relaxed)
    }

    /// Enqueue one message toward a worker. Returns the request id, or
    /// `None` when the worker is disconnected (callers fail fast; the
    /// reconnect path re-ships state, not requests).
    fn enqueue(&self, shard: usize, msg: &Msg, is_request: bool) -> Option<u64> {
        let state = &self.workers[shard];
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut q = state.queue.lock().expect("queue");
        if !q.connected {
            return None;
        }
        q.frames.push_back(OutFrame {
            frame: Frame { request_id: id, kind: msg.kind(), payload: msg.encode() },
            is_request,
        });
        drop(q);
        state.queue_cv.notify_all();
        Some(id)
    }
}

impl ShardTransport for RpcTransport {
    fn nshards(&self) -> usize {
        self.workers.len()
    }

    fn boundaries(&self) -> Vec<usize> {
        self.boundaries.get().expect("set by connect").clone()
    }

    fn embed_part(
        &self,
        shard: usize,
        nodes: &[usize],
        epoch: u64,
        quality: Quality,
        deadline: Option<Instant>,
        slot: PartSlot,
    ) {
        let msg = Msg::Embed {
            epoch,
            quality,
            deadline_us: deadline
                .map(|d| d.saturating_duration_since(Instant::now()).as_micros() as u64),
            nodes: nodes.iter().map(|&n| n as u64).collect(),
        };
        let state = &self.workers[shard];
        // Insert into pending *under the queue lock* so a concurrent
        // disconnect either sees the entry (and fails it) or the
        // enqueue sees the disconnect (and fails fast) — never a
        // queued frame without a pending entry.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut q = state.queue.lock().expect("queue");
        if !q.connected {
            drop(q);
            slot.resolve(PartOutcome::Failed);
            return;
        }
        state
            .pending
            .lock()
            .expect("pending map")
            .insert(id, Pending::Embed { slot, sent: Instant::now(), rows: nodes.len() });
        state.queued_rows.fetch_add(nodes.len(), Ordering::Relaxed);
        q.frames.push_back(OutFrame {
            frame: Frame { request_id: id, kind: msg.kind(), payload: msg.encode() },
            is_request: true,
        });
        drop(q);
        state.queue_cv.notify_all();
    }

    fn score_part(
        &self,
        shard: usize,
        pairs: &[(usize, usize)],
        epoch: u64,
    ) -> Result<Vec<f32>, ServeError> {
        let msg =
            Msg::Score { epoch, pairs: pairs.iter().map(|&(u, v)| (u as u64, v as u64)).collect() };
        let state = &self.workers[shard];
        let cell = Arc::new(ScoreCell { slot: Mutex::new(None), cv: Condvar::new() });
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = state.queue.lock().expect("queue");
            if !q.connected {
                return Err(ServeError::PartFailed { shard: Some(shard) });
            }
            state
                .pending
                .lock()
                .expect("pending map")
                .insert(id, Pending::Score { cell: Arc::clone(&cell), sent: Instant::now() });
            q.frames.push_back(OutFrame {
                frame: Frame { request_id: id, kind: msg.kind(), payload: msg.encode() },
                is_request: true,
            });
        }
        state.queue_cv.notify_all();
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut slot = cell.slot.lock().expect("score cell");
        while slot.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Give up typed; a late reply resolves a cell nobody
                // reads, which is harmless.
                state.pending.lock().expect("pending map").remove(&id);
                return Err(ServeError::PartFailed { shard: Some(shard) });
            }
            let (s, _) = cell.cv.wait_timeout(slot, left).expect("score wait");
            slot = s;
        }
        slot.take().expect("resolved")
    }

    fn ship(&self, record: &EpochRecord) {
        let _order = self.ship_order.lock().expect("ship order");
        self.log.ship(record);
        let msg = Msg::Epoch(record.clone());
        for shard in 0..self.workers.len() {
            // Disconnected workers get the record via catch-up.
            let _ = self.enqueue(shard, &msg, false);
        }
    }

    fn queued_rows(&self, shard: usize) -> usize {
        self.workers[shard].queued_rows.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        for state in &self.workers {
            state.disconnect();
            state.fail_all();
        }
    }
}

impl Drop for RpcTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker's connection manager: connect → handshake → catch-up →
/// write loop, forever (with backoff) until the transport stops.
fn manage_worker(
    state: Arc<WorkerState>,
    log: Arc<EpochLog>,
    stop: Arc<AtomicBool>,
    request_seq: Arc<AtomicU64>,
    fault: Option<Arc<FaultPlan>>,
    backoff: Duration,
    ship_order: Arc<Mutex<()>>,
) {
    while !stop.load(Ordering::Acquire) {
        let Ok(stream) = UnixStream::connect(&state.path) else {
            std::thread::sleep(backoff);
            continue;
        };
        // Bound the handshake read so a wedged worker doesn't pin the
        // manager forever; the session itself runs untimed.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let Some((worker_epoch, worker_fresh)) = read_hello(&state, &stream) else {
            std::thread::sleep(backoff);
            continue;
        };
        let _ = stream.set_read_timeout(None);
        // Catch-up + mark connected, atomically vs `ship` (module docs).
        {
            let _order = ship_order.lock().expect("ship order");
            let from = if worker_fresh { None } else { Some(worker_epoch) };
            let records = log.catch_up(from);
            let mut q = state.queue.lock().expect("queue");
            q.frames.clear();
            for record in records {
                let msg = Msg::Epoch(record);
                q.frames.push_back(OutFrame {
                    frame: Frame { request_id: 0, kind: msg.kind(), payload: msg.encode() },
                    is_request: false,
                });
            }
            q.connected = true;
        }
        if state.had_session.swap(true, Ordering::AcqRel) {
            state.telemetry.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        state.queue_cv.notify_all();
        let reader = {
            let state = Arc::clone(&state);
            let stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => {
                    state.disconnect();
                    continue;
                }
            };
            std::thread::spawn(move || read_replies(&state, stream))
        };
        write_outgoing(&state, &stream, &stop, &request_seq, fault.as_deref());
        // Session over (either side failed or chaos severed it):
        // tear down, fail pending, loop back to reconnect.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        state.disconnect();
        let _ = reader.join();
        state.fail_all();
    }
    state.disconnect();
    state.fail_all();
}

/// Read and validate the worker's handshake. Returns
/// `(epoch, fresh)` and records the layout on first contact.
fn read_hello(state: &WorkerState, stream: &UnixStream) -> Option<(u64, bool)> {
    let mut r = BufReader::new(stream.try_clone().ok()?);
    let frame = read_frame(&mut r).ok()?;
    let Ok(Msg::Hello {
        proto_version,
        shard,
        band_start,
        band_len,
        y_rows,
        d,
        epoch,
        fresh,
        backend,
    }) = decode(frame.kind, &frame.payload)
    else {
        return None;
    };
    if proto_version != PROTO_VERSION || shard as usize != state.shard {
        return None;
    }
    let layout = WorkerLayout { band_start, band_len, y_rows, d };
    let mut slot = state.layout.lock().expect("layout");
    if let Some(existing) = slot.as_ref() {
        // A restarted worker must come back with the same shape.
        if existing.band_start != layout.band_start
            || existing.band_len != layout.band_len
            || existing.d != layout.d
        {
            return None;
        }
    } else {
        if backend != active_backend().label() {
            eprintln!(
                "fusedmm-rpc: worker {} serves with backend `{}` (coordinator: `{}`)",
                state.shard,
                backend,
                active_backend().label()
            );
        }
        *slot = Some(layout);
    }
    drop(slot);
    state.layout_cv.notify_all();
    Some((epoch, fresh))
}

/// The connection's writer: drain the queue in FIFO order, applying
/// the fault plan's frame delay and scheduled connection drops.
fn write_outgoing(
    state: &WorkerState,
    stream: &UnixStream,
    stop: &AtomicBool,
    request_seq: &AtomicU64,
    fault: Option<&FaultPlan>,
) {
    let Ok(raw) = stream.try_clone() else { return };
    let mut w = BufWriter::new(raw);
    loop {
        let out = {
            let mut q = state.queue.lock().expect("queue");
            loop {
                if !q.connected || stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(out) = q.frames.pop_front() {
                    break out;
                }
                q = state.queue_cv.wait(q).expect("queue wait");
            }
        };
        if let Some(delay) = fault.and_then(FaultPlan::frame_delay) {
            std::thread::sleep(delay);
        }
        if out.is_request {
            let seq = request_seq.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(n) = fault.and_then(FaultPlan::conn_drop_every) {
                if seq.is_multiple_of(n) {
                    // Scheduled chaos: sever instead of sending. The
                    // dropped request fails with the rest of the
                    // session's pending set.
                    return;
                }
            }
        }
        let len = (crate::frame::HEADER + 4 + out.frame.payload.len()) as u64;
        if write_frame(&mut w, &out.frame).is_err() || w.flush().is_err() {
            return;
        }
        state.telemetry.bytes_sent.fetch_add(len, Ordering::Relaxed);
        state.telemetry.frames_sent.fetch_add(1, Ordering::Relaxed);
    }
}

/// The connection's reader: resolve replies against the pending map.
fn read_replies(state: &WorkerState, stream: UnixStream) {
    let mut r = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    while let Ok(frame) = read_frame(&mut r) {
        state
            .telemetry
            .bytes_received
            .fetch_add((crate::frame::HEADER + 4 + frame.payload.len()) as u64, Ordering::Relaxed);
        state.telemetry.frames_received.fetch_add(1, Ordering::Relaxed);
        let msg = match decode(frame.kind, &frame.payload) {
            Ok(m) => m,
            Err(_) => break, // protocol corruption: force a reconnect
        };
        match msg {
            Msg::EpochAck { epoch } => {
                state.acked.fetch_max(epoch, Ordering::Relaxed);
            }
            Msg::EmbedOk { rows } => {
                if let Some(Pending::Embed { slot, sent, rows: expect }) =
                    take(state, frame.request_id)
                {
                    state.telemetry.rtt.record(sent.elapsed());
                    state.queued_rows.fetch_sub(expect, Ordering::Relaxed);
                    if rows.nrows() == expect {
                        slot.resolve(PartOutcome::Rows(rows));
                    } else {
                        slot.resolve(PartOutcome::Failed);
                    }
                }
            }
            Msg::ScoreOk { scores } => {
                if let Some(Pending::Score { cell, sent }) = take(state, frame.request_id) {
                    state.telemetry.rtt.record(sent.elapsed());
                    cell.resolve(Ok(scores));
                }
            }
            Msg::PartErr { err } => match take(state, frame.request_id) {
                Some(Pending::Embed { slot, sent, rows }) => {
                    state.telemetry.rtt.record(sent.elapsed());
                    state.queued_rows.fetch_sub(rows, Ordering::Relaxed);
                    slot.resolve(match err {
                        WireError::Expired => PartOutcome::Expired,
                        _ => PartOutcome::Failed,
                    });
                }
                Some(Pending::Score { cell, .. }) => {
                    cell.resolve(Err(ServeError::PartFailed { shard: Some(state.shard) }));
                }
                None => {}
            },
            // Workers never originate other kinds mid-session.
            _ => {}
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    state.disconnect();
}

fn take(state: &WorkerState, id: u64) -> Option<Pending> {
    state.pending.lock().expect("pending map").remove(&id)
}
