//! `fusedmm-rpc` — multi-process shard serving for FusedMM.
//!
//! [`ShardedEngine`](fusedmm_serve::ShardedEngine) runs its PART1D
//! band engines in-process; this crate moves them into separate worker
//! processes behind a hand-rolled, length-prefixed binary protocol
//! (unix sockets first; the framing is transport-agnostic and
//! TCP-ready). It follows the communication-optimal regime Bharadwaj,
//! Buluç & Demmel identify for sparse ML kernels: **replicate the
//! dense factor, partition only the sparse shards** — here, the
//! feature matrices replicate to every worker as an ordered epoch log,
//! while each worker owns just its sparse row band.
//!
//! Three layers:
//!
//! * [`frame`] + [`proto`] — the wire: length-prefixed frames with
//!   request ids and typed error frames, and a little-endian codec for
//!   the message schema (`Hello` handshake with shard-band + backend
//!   negotiation, embed/score parts, epoch records). `f32`s cross as
//!   raw bits, so remote responses are bit-identical to in-process.
//! * [`worker`] — the worker process side: a serve loop exposing a
//!   [`WorkerEngine`](fusedmm_serve::remote::WorkerEngine) (band
//!   engine + replica feature store + epoch history + per-replica
//!   cache) over a socket, applying the coordinator's epoch log in
//!   stream order.
//! * [`client`] — the coordinator side: [`RpcTransport`] implements
//!   [`ShardTransport`](fusedmm_serve::remote::ShardTransport) for
//!   [`RemoteShardedEngine`](fusedmm_serve::remote::RemoteShardedEngine),
//!   with per-worker connection managers, reconnect + epoch-log
//!   catch-up (snapshot for fresh replicas, log suffix for lagging
//!   ones), request timeouts mapped onto the typed `PartFailed` /
//!   deadline machinery, transport fault injection
//!   (`drop_conn_every` / `delay_frame_us`), and `fusedmm_rpc_*`
//!   telemetry.

pub mod client;
pub mod frame;
pub mod log;
pub mod proto;
pub mod worker;

pub use client::{RpcConfig, RpcTransport};
pub use frame::{read_frame, write_frame, Frame, FrameError};
pub use log::EpochLog;
pub use proto::{decode, DecodeError, Msg, WireError, PROTO_VERSION};
pub use worker::WorkerServer;
