//! The worker-process side: a serve loop that exposes one
//! [`WorkerEngine`] over framed unix-socket connections.
//!
//! A worker is passive: it binds a socket, and for each coordinator
//! connection sends a `Hello` (shard, band, dimensions, current epoch,
//! freshness, SIMD backend — the handshake the coordinator validates
//! the shard layout against), then processes frames **sequentially in
//! arrival order**. Sequential processing is the whole ordering story:
//! an epoch record is applied before any request that follows it on
//! the stream, which is exactly the FIFO guarantee per-request epoch
//! pinning needs — no cross-frame locking, no reordering window.
//!
//! Connections are serial, state is durable: when a coordinator drops,
//! the loop returns to `accept` with the replica store, epoch history,
//! and cache intact — a reconnecting coordinator sees the worker's
//! current epoch in the next `Hello` and ships only the missing log
//! suffix. Only a worker *process* restart loses state, which the
//! `fresh` handshake flag reports so the coordinator starts from a
//! snapshot.

use std::io::{self, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use fusedmm_core::active_backend;
use fusedmm_serve::remote::{WorkerEngine, WorkerError};
use fusedmm_serve::ServeError;

use crate::frame::{read_frame, write_frame, Frame, FrameError};
use crate::proto::{decode, Msg, WireError, PROTO_VERSION};

/// A running worker serve loop and the handle to stop it.
pub struct WorkerServer {
    stop: Arc<AtomicBool>,
    path: PathBuf,
    /// The live connection, if any — so `kill` can sever it without
    /// waiting for the in-flight frame to finish.
    current: Arc<Mutex<Option<UnixStream>>>,
    thread: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Bind `path` (replacing any stale socket file) and serve
    /// `engine` on a background thread until [`stop`](Self::stop).
    pub fn serve_unix(
        engine: Arc<WorkerEngine>,
        path: impl AsRef<Path>,
    ) -> io::Result<WorkerServer> {
        let path = path.as_ref().to_path_buf();
        // A previous run's socket file blocks bind; it is dead weight.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let current = Arc::new(Mutex::new(None::<UnixStream>));
        let thread = {
            let stop = Arc::clone(&stop);
            let current = Arc::clone(&current);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let Ok((stream, _)) = listener.accept() else { break };
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    *current.lock().expect("connection slot") = stream.try_clone().ok();
                    let _ = serve_connection(&engine, stream);
                    *current.lock().expect("connection slot") = None;
                }
            })
        };
        Ok(WorkerServer { stop, path, current, thread: Some(thread) })
    }

    /// Sever the live connection (if any) without stopping the loop —
    /// the worker keeps its state and accepts the reconnect. Chaos
    /// tests use this as a worker-side fault.
    pub fn disconnect(&self) {
        if let Some(stream) = self.current.lock().expect("connection slot").as_ref() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stop the serve loop and join it. The replica state dies with
    /// the engine; a restarted worker reports `fresh` and is re-seeded
    /// from a snapshot. Idempotent: a second call (e.g. `Drop` after an
    /// explicit `stop`) is a no-op — the socket path may since belong
    /// to a replacement server and must not be unlinked again.
    pub fn stop(&mut self) {
        let Some(thread) = self.thread.take() else { return };
        self.stop.store(true, Ordering::Release);
        self.disconnect();
        // Unblock a loop parked in accept. If the listener is already
        // unreachable (socket file removed externally), joining could
        // block forever — detach instead.
        if UnixStream::connect(&self.path).is_ok() {
            let _ = thread.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serve one coordinator connection to completion (EOF or error).
fn serve_connection(engine: &WorkerEngine, stream: UnixStream) -> Result<(), FrameError> {
    let mut r = BufReader::new(stream.try_clone()?);
    let mut w = BufWriter::new(stream);
    let band = engine.band();
    let hello = Msg::Hello {
        proto_version: PROTO_VERSION,
        shard: engine.shard() as u32,
        band_start: band.start as u64,
        band_len: (band.end - band.start) as u64,
        y_rows: engine.y_rows() as u64,
        d: engine.dimension() as u32,
        epoch: engine.current_epoch(),
        fresh: engine.is_fresh(),
        backend: active_backend().label().to_string(),
    };
    send(&mut w, 0, &hello)?;
    loop {
        let frame = match read_frame(&mut r) {
            Ok(f) => f,
            Err(FrameError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = match decode(frame.kind, &frame.payload) {
            Ok(msg) => handle(engine, msg),
            // A frame that doesn't decode is a protocol bug, not a
            // compute failure: report it typed and keep serving.
            Err(e) => Some(Msg::PartErr { err: WireError::Other(e.to_string()) }),
        };
        if let Some(reply) = reply {
            send(&mut w, frame.request_id, &reply)?;
        }
    }
}

fn send(w: &mut impl Write, request_id: u64, msg: &Msg) -> Result<(), FrameError> {
    write_frame(w, &Frame { request_id, kind: msg.kind(), payload: msg.encode() })?;
    w.flush()?;
    Ok(())
}

fn handle(engine: &WorkerEngine, msg: Msg) -> Option<Msg> {
    match msg {
        Msg::Epoch(record) => {
            let epoch = engine.apply(record);
            Some(Msg::EpochAck { epoch })
        }
        Msg::Embed { epoch, quality, deadline_us, nodes } => {
            let nodes: Vec<usize> = nodes.into_iter().map(|n| n as usize).collect();
            let deadline = Msg::deadline_from_us(deadline_us);
            Some(match engine.embed_part(&nodes, epoch, quality, deadline) {
                Ok(resp) => Msg::EmbedOk { rows: resp.rows },
                Err(e) => Msg::PartErr { err: wire_error(e) },
            })
        }
        Msg::Score { epoch, pairs } => {
            let pairs: Vec<(usize, usize)> =
                pairs.into_iter().map(|(u, v)| (u as usize, v as usize)).collect();
            Some(match engine.score_part(&pairs, epoch) {
                Ok(scores) => Msg::ScoreOk { scores },
                Err(e) => Msg::PartErr { err: wire_error(e) },
            })
        }
        // Replies and handshakes are never requests to a worker.
        _ => Some(Msg::PartErr { err: WireError::Other("unexpected message".into()) }),
    }
}

fn wire_error(e: WorkerError) -> WireError {
    match e {
        WorkerError::EpochUnavailable { .. } => WireError::EpochUnavailable,
        WorkerError::Serve(ServeError::DeadlineExpired) => WireError::Expired,
        // Everything else is retryable through the front end's
        // one-shot healthy-path retry.
        WorkerError::Serve(_) => WireError::Panicked,
    }
}
