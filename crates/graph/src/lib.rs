//! Graph generators and the benchmark dataset registry.
//!
//! The paper evaluates on eight real-world graphs (Table V: Cora,
//! Harvard, Pubmed, Flickr, Ogbprot., Amazon, Youtube, Orkut) downloaded
//! from networkrepository.com and the SuiteSparse collection, plus RMAT
//! graphs generated with PaRMAT for the sensitivity study (Fig. 11a).
//! Offline we synthesize stand-ins:
//!
//! * [`rmat()`](rmat::rmat) — a recursive-matrix (RMAT) generator, our PaRMAT
//!   equivalent, producing the skewed degree distributions of the
//!   paper's social-network graphs;
//! * [`erdos`] — Erdős–Rényi G(n, m) uniform random graphs;
//! * [`planted`] — planted-partition (stochastic block model) graphs
//!   with ground-truth communities, used for the Cora/Pubmed node
//!   classification accuracy experiment (§V-D);
//! * [`datasets`] — a registry mapping each Table V graph to a synthetic
//!   stand-in with matched vertex count (optionally scaled down),
//!   matched average degree, and a power-law tail;
//! * [`stats`] — degree statistics used by tests and harness output;
//! * [`reordering`] — degree-sort and RCM-style vertex orderings that
//!   improve locality on skewed graphs without changing results.

pub mod datasets;
pub mod erdos;
pub mod features;
pub mod planted;
pub mod reordering;
pub mod rmat;
pub mod stats;

pub use datasets::{Dataset, DatasetSpec};
pub use erdos::erdos_renyi;
pub use features::random_features;
pub use planted::{planted_partition, PlantedGraph};
pub use reordering::{Permutation, Reordering};
pub use rmat::{rmat, RmatConfig};
pub use stats::GraphStats;
