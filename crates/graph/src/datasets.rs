//! Registry of the paper's Table V datasets and their synthetic stand-ins.
//!
//! The paper's graphs are downloads from networkrepository.com and
//! <https://sparse.tamu.edu>; this environment is offline, so each dataset
//! maps to a generated stand-in with (a) the paper's vertex count scaled
//! by a dataset-specific factor that keeps generation and kernels
//! tractable on a small machine, (b) the paper's *average degree
//! preserved exactly* (the quantity the paper's arithmetic-intensity
//! analysis, Eq. 4, says drives kernel performance), and (c) an RMAT
//! power-law degree tail. Cora and Pubmed additionally get
//! planted-partition stand-ins with ground-truth labels for the
//! classification accuracy experiment.
//!
//! Every harness prints both the paper's numbers (from [`DatasetSpec`])
//! and the stand-in's measured stats so substitutions stay visible.

use fusedmm_sparse::csr::Csr;

use crate::planted::{planted_partition, PlantedGraph};
use crate::rmat::{rmat, RmatConfig};

/// The eight graphs of the paper's Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Citation network, 2,708 vertices — accuracy benchmark graph.
    Cora,
    /// Dense social network, 15,126 vertices, avg degree 109.
    Harvard,
    /// Citation network, 19,717 vertices — accuracy benchmark graph.
    Pubmed,
    /// Photo-sharing social network, 89,250 vertices.
    Flickr,
    /// `ogbn-proteins`, 132,534 vertices, avg degree 597 — the densest
    /// graph in the suite.
    Ogbprotein,
    /// Co-purchase network, 334,863 vertices.
    Amazon,
    /// Social network, 1,138,499 vertices.
    Youtube,
    /// Social network, 3,072,441 vertices, 117M edges — the largest.
    Orkut,
}

/// The published statistics of one Table V graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset display name as printed in the paper.
    pub name: &'static str,
    /// Paper vertex count.
    pub vertices: usize,
    /// Paper undirected edge count (the adjacency matrix stores 2× this).
    pub edges: usize,
    /// Paper average degree.
    pub avg_degree: f64,
    /// Paper maximum degree.
    pub max_degree: usize,
}

impl Dataset {
    /// All Table V graphs in the paper's row order.
    pub fn all() -> [Dataset; 8] {
        [
            Dataset::Cora,
            Dataset::Harvard,
            Dataset::Pubmed,
            Dataset::Flickr,
            Dataset::Ogbprotein,
            Dataset::Amazon,
            Dataset::Youtube,
            Dataset::Orkut,
        ]
    }

    /// The paper's published statistics (Table V).
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::Cora => DatasetSpec {
                name: "Cora",
                vertices: 2708,
                edges: 5278,
                avg_degree: 3.90,
                max_degree: 168,
            },
            Dataset::Harvard => DatasetSpec {
                name: "Harvard",
                vertices: 15126,
                edges: 824_617,
                avg_degree: 109.03,
                max_degree: 1183,
            },
            Dataset::Pubmed => DatasetSpec {
                name: "Pubmed",
                vertices: 19717,
                edges: 44324,
                avg_degree: 4.49,
                max_degree: 171,
            },
            Dataset::Flickr => DatasetSpec {
                name: "Flickr",
                vertices: 89250,
                edges: 449_878,
                avg_degree: 10.08,
                max_degree: 5425,
            },
            Dataset::Ogbprotein => DatasetSpec {
                name: "Ogbprot.",
                vertices: 132_534,
                edges: 39_561_252,
                avg_degree: 597.0,
                max_degree: 7750,
            },
            Dataset::Amazon => DatasetSpec {
                name: "Amazon",
                vertices: 334_863,
                edges: 925_872,
                avg_degree: 5.59,
                max_degree: 549,
            },
            Dataset::Youtube => DatasetSpec {
                name: "Youtube",
                vertices: 1_138_499,
                edges: 2_990_443,
                avg_degree: 5.25,
                max_degree: 28754,
            },
            Dataset::Orkut => DatasetSpec {
                name: "Orkut",
                vertices: 3_072_441,
                edges: 117_185_083,
                avg_degree: 76.28,
                max_degree: 33313,
            },
        }
    }

    /// The default down-scaling factor applied to the vertex count for
    /// stand-in generation (1.0 = full size). Chosen so the whole
    /// benchmark suite runs in minutes on a small machine while each
    /// graph keeps its paper average degree.
    pub fn recommended_scale(&self) -> f64 {
        match self {
            Dataset::Cora => 1.0,
            Dataset::Harvard => 0.25,
            Dataset::Pubmed => 1.0,
            Dataset::Flickr => 0.125,
            Dataset::Ogbprotein => 1.0 / 48.0,
            Dataset::Amazon => 1.0 / 24.0,
            Dataset::Youtube => 1.0 / 72.0,
            Dataset::Orkut => 1.0 / 256.0,
        }
    }

    /// Number of node classes, for the two classification graphs.
    pub fn num_classes(&self) -> Option<usize> {
        match self {
            Dataset::Cora => Some(7),
            Dataset::Pubmed => Some(3),
            _ => None,
        }
    }

    /// Generate the stand-in at the recommended scale.
    pub fn standin(&self) -> Csr {
        self.standin_scaled(self.recommended_scale())
    }

    /// The average degree a stand-in with `n` vertices targets: the
    /// paper's average degree, clamped to a quarter of the vertex count
    /// so extreme down-scaling of dense graphs (Ogbprot. at tiny test
    /// scales) stays realizable as a simple graph.
    pub fn target_degree(&self, n: usize) -> f64 {
        self.spec().avg_degree.min(n as f64 / 4.0)
    }

    /// Generate a stand-in with `scale · vertices` vertices and the
    /// paper's average degree (see [`Dataset::target_degree`]). Degree
    /// distribution is an RMAT power law (all Table V graphs are
    /// social/citation/biological networks with heavy-tailed degrees).
    pub fn standin_scaled(&self, scale: f64) -> Csr {
        let spec = self.spec();
        let n = ((spec.vertices as f64 * scale).round() as usize).max(16);
        // avg_degree counts stored nnz per row; undirected edges = n*deg/2.
        let nedges = ((n as f64 * self.target_degree(n)) / 2.0).round() as usize;
        // Seed derived from the dataset so every stand-in is distinct
        // but reproducible.
        let seed = 0xF05E_D000 + *self as u64;
        rmat(&RmatConfig::new(n, nedges.max(1)).with_seed(seed))
    }

    /// Labeled planted-partition stand-in for the classification
    /// experiment. Only Cora and Pubmed have labels in the paper.
    /// `scale` applies to the vertex count as in
    /// [`Dataset::standin_scaled`].
    pub fn labeled_standin(&self, scale: f64) -> Option<PlantedGraph> {
        let k = self.num_classes()?;
        let spec = self.spec();
        let n = ((spec.vertices as f64 * scale).round() as usize).max(16 * k);
        // Strong community structure: ~80% of each vertex's neighbors
        // within its class, matching citation-network homophily.
        let deg = spec.avg_degree;
        let seed = 0x1ABE_1000 + *self as u64;
        Some(planted_partition(n, k, deg * 0.8, deg * 0.2, seed))
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn specs_match_table_v() {
        assert_eq!(Dataset::Cora.spec().vertices, 2708);
        assert_eq!(Dataset::Orkut.spec().edges, 117_185_083);
        assert_eq!(Dataset::Ogbprotein.spec().max_degree, 7750);
        assert_eq!(Dataset::all().len(), 8);
    }

    #[test]
    fn standin_preserves_avg_degree() {
        // Use small explicit scales to keep the test fast.
        for (ds, scale) in [(Dataset::Youtube, 0.002), (Dataset::Flickr, 0.02)] {
            let g = ds.standin_scaled(scale);
            let stats = GraphStats::compute(&g);
            let want = ds.spec().avg_degree;
            // Dedup removes a few edges; stay within 25%.
            assert!(
                (stats.avg_degree - want).abs() / want < 0.25,
                "{ds}: avg degree {} vs paper {want}",
                stats.avg_degree
            );
        }
    }

    #[test]
    fn standin_vertex_count_scales() {
        let g = Dataset::Amazon.standin_scaled(0.01);
        let expected = (334_863.0 * 0.01f64).round() as usize;
        assert_eq!(g.nrows(), expected);
    }

    #[test]
    fn standins_have_skewed_degrees() {
        let g = Dataset::Flickr.standin_scaled(0.05);
        let stats = GraphStats::compute(&g);
        assert!(stats.max_degree as f64 > 3.0 * stats.avg_degree);
    }

    #[test]
    fn labeled_standins_only_for_citation_graphs() {
        assert!(Dataset::Cora.labeled_standin(0.1).is_some());
        assert!(Dataset::Pubmed.labeled_standin(0.05).is_some());
        assert!(Dataset::Orkut.labeled_standin(0.01).is_none());
    }

    #[test]
    fn cora_standin_has_seven_classes() {
        let g = Dataset::Cora.labeled_standin(0.2).unwrap();
        assert_eq!(g.k, 7);
        assert!(g.within_community_edge_fraction() > 0.6);
    }

    #[test]
    fn standins_are_reproducible() {
        let a = Dataset::Cora.standin_scaled(0.3);
        let b = Dataset::Cora.standin_scaled(0.3);
        assert_eq!(a, b);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(Dataset::Ogbprotein.to_string(), "Ogbprot.");
    }
}
