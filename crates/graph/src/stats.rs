//! Degree statistics for generated and loaded graphs.
//!
//! The benchmark harness prints a Table V-style summary (vertices,
//! edges, average degree, max degree) for every stand-in so the reader
//! can compare against the paper's dataset table; the test suite uses
//! the skewness measures to verify that RMAT stand-ins are power-law-ish
//! while Erdős–Rényi graphs are not.

use fusedmm_sparse::csr::Csr;

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices (rows).
    pub nvertices: usize,
    /// Number of stored directed edges (nnz).
    pub nedges: usize,
    /// Average out-degree (`nnz / n`).
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Coefficient of variation of the degree sequence (stddev / mean);
    /// ≈ small for Erdős–Rényi, large for power-law graphs.
    pub degree_cv: f64,
}

impl GraphStats {
    /// Compute statistics for a CSR adjacency matrix.
    pub fn compute(a: &Csr) -> Self {
        let n = a.nrows();
        let degrees = a.row_degrees();
        let nnz = a.nnz();
        let mean = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
        let var = if n == 0 {
            0.0
        } else {
            degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64
        };
        GraphStats {
            nvertices: n,
            nedges: nnz,
            avg_degree: mean,
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            isolated: degrees.iter().filter(|&&d| d == 0).count(),
            degree_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        }
    }

    /// A one-line Table V-style row: `name  |V|  |E|  avg  max`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<12} {:>10} {:>12} {:>10.2} {:>10}",
            name, self.nvertices, self.nedges, self.avg_degree, self.max_degree
        )
    }
}

/// Histogram of degrees in log-2 buckets (bucket `i` counts vertices
/// with degree in `[2^i, 2^{i+1})`; bucket 0 also counts degree 1,
/// degree 0 is excluded). Power-law graphs show a long, slowly decaying
/// tail across buckets. Thin wrapper over
/// [`Csr::degree_histogram_log2`], the shared degree-scan helper also
/// used by the hybrid-kernel row classifier and the metrics registry.
pub fn degree_histogram_log2(a: &Csr) -> Vec<usize> {
    a.degree_histogram_log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erdos::erdos_renyi;
    use crate::rmat::{rmat, RmatConfig};
    use fusedmm_sparse::coo::{Coo, Dedup};

    #[test]
    fn stats_on_tiny_graph() {
        let mut c = Coo::new(4, 4);
        c.push(0, 1, 1.0);
        c.push(0, 2, 1.0);
        c.push(1, 0, 1.0);
        let g = c.to_csr(Dedup::Sum);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nvertices, 4);
        assert_eq!(s.nedges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 2);
        assert!((s.avg_degree - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rmat_more_skewed_than_erdos() {
        let r = GraphStats::compute(&rmat(&RmatConfig::new(2048, 16000)));
        let e = GraphStats::compute(&erdos_renyi(2048, 16000, 1));
        assert!(
            r.degree_cv > 2.0 * e.degree_cv,
            "rmat cv {} vs er cv {}",
            r.degree_cv,
            e.degree_cv
        );
    }

    #[test]
    fn histogram_buckets_count_all_nonisolated() {
        let g = erdos_renyi(100, 400, 2);
        let hist = degree_histogram_log2(&g);
        let covered: usize = hist.iter().sum();
        let s = GraphStats::compute(&g);
        assert_eq!(covered, 100 - s.isolated);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // one vertex of degree 1 (bucket 0), one of degree 4 (bucket 2)
        let mut c = Coo::new(6, 6);
        c.push(0, 1, 1.0);
        for v in 1..5 {
            c.push(5, v, 1.0);
        }
        let hist = degree_histogram_log2(&c.to_csr(Dedup::Sum));
        assert_eq!(hist, vec![1, 0, 1]);
    }

    #[test]
    fn table_row_formats() {
        let g = erdos_renyi(10, 20, 3);
        let row = GraphStats::compute(&g).table_row("test");
        assert!(row.contains("test"));
        assert!(row.contains("40")); // 20 undirected edges = 40 nnz
    }
}
