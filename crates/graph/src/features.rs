//! Random dense feature matrices.
//!
//! Kernel benchmarks need `X` and `Y` filled with realistic magnitudes;
//! embedding training needs small random initial embeddings. Both come
//! from here, seeded for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_sparse::dense::Dense;

/// An `nrows × d` matrix with entries uniform in `[-scale, scale)`.
pub fn random_features(nrows: usize, d: usize, scale: f32, seed: u64) -> Dense {
    assert!(scale > 0.0, "feature scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Dense::zeros(nrows, d);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-scale..scale);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let m = random_features(10, 8, 0.5, 1);
        assert_eq!((m.nrows(), m.ncols()), (10, 8));
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn seeded_reproducibility() {
        assert_eq!(random_features(5, 4, 1.0, 2), random_features(5, 4, 1.0, 2));
        assert_ne!(random_features(5, 4, 1.0, 2), random_features(5, 4, 1.0, 3));
    }

    #[test]
    fn values_are_not_all_equal() {
        let m = random_features(4, 4, 1.0, 4);
        let first = m.as_slice()[0];
        assert!(m.as_slice().iter().any(|&v| v != first));
    }
}
