//! Graph reordering pre-passes for skewed graphs.
//!
//! Power-law graphs scatter their hub vertices across the id space, so
//! the FusedMM inner loop streams `Y` rows with no reuse and PART1D
//! bands end up internally ragged. A reordering pass renumbers the
//! vertices once, up front, as a pure transformation:
//!
//! * [`Reordering::DegreeSort`] places hubs first — the hot `Y` rows
//!   every mega-row reads cluster at the top of the matrix and stay
//!   cache-resident, and rows of similar degree land in the same
//!   PART1D band (degree classes become contiguous).
//! * [`Reordering::RcmBfs`] is a reverse-Cuthill–McKee-style BFS
//!   ordering that narrows the bandwidth, so each row's neighbor ids —
//!   and therefore its `Y` reads — fall close together.
//!
//! Both produce a [`Permutation`] (forward + inverse maps), applied to
//! the adjacency with [`Permutation::permute_csr`] — which preserves
//! each row's original neighbor order, so kernel accumulation is
//! bit-identical under the rename. Serving engines accept an optional
//! reordering in their config and keep external vertex ids unchanged
//! by remapping at the scatter/gather boundary.

use fusedmm_sparse::csr::Csr;
pub use fusedmm_sparse::perm::Permutation;

/// A vertex-reordering strategy: computes a [`Permutation`] from the
/// degree structure of a square adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reordering {
    /// Sort vertices by degree, descending (ties by original id, so
    /// the order is deterministic). Groups the hub rows — and the hub
    /// `Y` rows the long tail keeps re-reading — at the top.
    DegreeSort,
    /// Reverse-Cuthill–McKee-style ordering: per connected component,
    /// BFS from a minimum-degree seed visiting neighbors in ascending
    /// degree order, then reverse the whole visit order. Clusters each
    /// vertex near its neighbors (bandwidth reduction).
    RcmBfs,
}

impl Reordering {
    /// Compute the permutation for `a` (rows of a square adjacency
    /// matrix; for directed storage the out-neighbor lists drive the
    /// BFS).
    ///
    /// # Panics
    /// Panics when `a` is not square.
    pub fn compute(&self, a: &Csr) -> Permutation {
        assert_eq!(a.nrows(), a.ncols(), "reordering needs a square adjacency matrix");
        match self {
            Reordering::DegreeSort => degree_sort(a),
            Reordering::RcmBfs => rcm_bfs(a),
        }
    }

    /// Stable lower-case label for metrics / bench output.
    pub fn label(&self) -> &'static str {
        match self {
            Reordering::DegreeSort => "degree-sort",
            Reordering::RcmBfs => "rcm-bfs",
        }
    }
}

fn degree_sort(a: &Csr) -> Permutation {
    let deg = a.row_degrees();
    let mut old_of_new: Vec<usize> = (0..a.nrows()).collect();
    old_of_new.sort_by_key(|&u| (std::cmp::Reverse(deg[u]), u));
    Permutation::from_old_of_new(old_of_new)
}

fn rcm_bfs(a: &Csr) -> Permutation {
    let n = a.nrows();
    let deg = a.row_degrees();
    // Seeds scanned in ascending-degree order so every component
    // starts from a (locally) peripheral, low-degree vertex.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&u| (deg[u], u));
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut frontier: Vec<usize> = Vec::new();
    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        let mut head = order.len();
        order.push(seed);
        // BFS; the queue lives inside `order` itself.
        while head < order.len() {
            let u = order[head];
            head += 1;
            frontier.clear();
            for &v in a.row(u).0 {
                if v < n && !visited[v] {
                    visited[v] = true;
                    frontier.push(v);
                }
            }
            frontier.sort_by_key(|&v| (deg[v], v));
            order.extend_from_slice(&frontier);
        }
    }
    order.reverse();
    Permutation::from_old_of_new(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::{rmat, RmatConfig};
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn path4() -> Csr {
        // 0—1—2—3 undirected path.
        let mut c = Coo::new(4, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            c.push(u, v, 1.0);
            c.push(v, u, 1.0);
        }
        c.to_csr(Dedup::Sum)
    }

    #[test]
    fn degree_sort_orders_descending() {
        let a = rmat(&RmatConfig::new(256, 1500));
        let p = Reordering::DegreeSort.compute(&a);
        let deg = a.row_degrees();
        let sorted: Vec<usize> = p.old_of_new().iter().map(|&u| deg[u]).collect();
        assert!(sorted.windows(2).all(|w| w[0] >= w[1]), "degrees not descending");
    }

    #[test]
    fn both_orderings_are_bijections_on_rmat() {
        let a = rmat(&RmatConfig::new(512, 3000));
        for r in [Reordering::DegreeSort, Reordering::RcmBfs] {
            let p = r.compute(&a);
            assert_eq!(p.len(), a.nrows());
            // from_old_of_new validated bijectivity; spot-check inversion.
            for u in (0..a.nrows()).step_by(37) {
                assert_eq!(p.to_old(p.to_new(u)), u);
            }
        }
    }

    #[test]
    fn rcm_keeps_path_neighbors_adjacent() {
        let p = Reordering::RcmBfs.compute(&path4());
        // A path BFS'd from an endpoint and reversed is the path in
        // some direction: consecutive new ids are graph neighbors.
        let order = p.old_of_new();
        for w in order.windows(2) {
            assert_eq!(w[0].abs_diff(w[1]), 1, "order {order:?} breaks path adjacency");
        }
    }

    #[test]
    fn rcm_covers_disconnected_components() {
        // Two components: edge 0—1 and isolated vertices 2, 3.
        let mut c = Coo::new(4, 4);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let a = c.to_csr(Dedup::Sum);
        let p = Reordering::RcmBfs.compute(&a);
        let mut seen: Vec<usize> = (0..4).map(|u| p.to_new(u)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn permuted_graph_preserves_edges() {
        let a = rmat(&RmatConfig::new(128, 700));
        for r in [Reordering::DegreeSort, Reordering::RcmBfs] {
            let p = r.compute(&a);
            let pa = p.permute_csr(&a);
            assert_eq!(pa.nnz(), a.nnz());
            for (u, v, w) in a.iter() {
                assert_eq!(pa.get(p.to_new(u), p.to_new(v)), Some(w));
            }
        }
    }
}
