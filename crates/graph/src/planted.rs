//! Planted-partition (stochastic block model) graphs with labels.
//!
//! Cora and Pubmed — the graphs the paper uses for end-to-end training
//! and F1-micro node classification (§V-D, Table VIII) — are citation
//! networks with strong community structure aligned with class labels.
//! Our offline stand-ins are planted-partition graphs: `k` communities,
//! within-community edge probability `p_in`, across-community `p_out`
//! with `p_in ≫ p_out`, and the community id as the ground-truth label.
//! An embedding that captures the topology therefore predicts labels,
//! reproducing the accuracy experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_sparse::coo::{Coo, Dedup};
use fusedmm_sparse::csr::Csr;

/// A generated planted-partition graph plus ground-truth labels.
#[derive(Debug, Clone)]
pub struct PlantedGraph {
    /// The (symmetric, loop-free) adjacency matrix.
    pub adj: Csr,
    /// Ground-truth community label per vertex, in `0..k`.
    pub labels: Vec<usize>,
    /// Number of communities.
    pub k: usize,
}

/// Generate a planted-partition graph.
///
/// `avg_degree_in` / `avg_degree_out` give the expected number of
/// within- and across-community neighbors per vertex, which is more
/// convenient for matching a target average degree than raw
/// probabilities: total average degree ≈ `avg_degree_in +
/// avg_degree_out`.
pub fn planted_partition(
    nvertices: usize,
    k: usize,
    avg_degree_in: f64,
    avg_degree_out: f64,
    seed: u64,
) -> PlantedGraph {
    assert!(k >= 1 && nvertices >= k, "need at least one vertex per community");
    assert!(avg_degree_in >= 0.0 && avg_degree_out >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Round-robin labels give near-equal community sizes.
    let labels: Vec<usize> = (0..nvertices).map(|v| v % k).collect();
    let comm_size = nvertices as f64 / k as f64;
    // Expected within-degree = p_in * (comm_size - 1).
    let p_in = (avg_degree_in / (comm_size - 1.0).max(1.0)).min(1.0);
    let p_out = (avg_degree_out / (nvertices as f64 - comm_size).max(1.0)).min(1.0);

    let mut coo = Coo::with_capacity(
        nvertices,
        nvertices,
        (nvertices as f64 * (avg_degree_in + avg_degree_out)) as usize + 16,
    );
    // Skip-sampling over the upper triangle would be fancier; expected
    // O(n^2) probes are fine at stand-in scale and keep the code obvious.
    for u in 0..nvertices {
        for v in (u + 1)..nvertices {
            let p = if labels[u] == labels[v] { p_in } else { p_out };
            if p > 0.0 && rng.gen::<f64>() < p {
                coo.push_symmetric(u, v, 1.0);
            }
        }
    }
    PlantedGraph { adj: coo.to_csr(Dedup::Last), labels, k }
}

impl PlantedGraph {
    /// Fraction of edges that stay within a community — a quick
    /// assortativity check used by tests.
    pub fn within_community_edge_fraction(&self) -> f64 {
        let mut within = 0usize;
        let mut total = 0usize;
        for (u, v, _) in self.adj.iter() {
            total += 1;
            if self.labels[u] == self.labels[v] {
                within += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            within as f64 / total as f64
        }
    }

    /// Split vertex ids into a train/test partition with the given
    /// train fraction, deterministic in `seed`, stratified per class.
    pub fn train_test_split(&self, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for class in 0..self.k {
            let mut members: Vec<usize> =
                (0..self.labels.len()).filter(|&v| self.labels[v] == class).collect();
            // Fisher-Yates shuffle.
            for i in (1..members.len()).rev() {
                let j = rng.gen_range(0..=i);
                members.swap(i, j);
            }
            let cut = (members.len() as f64 * train_fraction).round() as usize;
            train.extend_from_slice(&members[..cut]);
            test.extend_from_slice(&members[cut..]);
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_communities() {
        let g = planted_partition(100, 4, 8.0, 1.0, 1);
        assert_eq!(g.labels.len(), 100);
        for class in 0..4 {
            assert!(g.labels.contains(&class));
        }
        assert!(g.labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn assortative_when_p_in_dominates() {
        let g = planted_partition(300, 3, 10.0, 1.0, 2);
        assert!(
            g.within_community_edge_fraction() > 0.7,
            "within fraction {}",
            g.within_community_edge_fraction()
        );
    }

    #[test]
    fn average_degree_close_to_requested() {
        let g = planted_partition(400, 4, 6.0, 2.0, 3);
        let avg = g.adj.avg_degree();
        assert!((avg - 8.0).abs() < 2.0, "avg degree {avg} too far from 8");
    }

    #[test]
    fn symmetric_and_loop_free() {
        let g = planted_partition(80, 2, 5.0, 1.0, 4);
        for (u, v, _) in g.adj.iter() {
            assert_ne!(u, v);
            assert_eq!(g.adj.get(v, u), Some(1.0));
        }
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let g = planted_partition(120, 3, 5.0, 1.0, 5);
        let (train, test) = g.train_test_split(0.5, 7);
        assert_eq!(train.len() + test.len(), 120);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_stratified() {
        let g = planted_partition(150, 3, 5.0, 1.0, 6);
        let (train, _) = g.train_test_split(0.6, 8);
        for class in 0..3 {
            let count = train.iter().filter(|&&v| g.labels[v] == class).count();
            assert_eq!(count, 30, "class {class} has {count} train vertices");
        }
    }

    #[test]
    fn reproducible() {
        let a = planted_partition(60, 2, 4.0, 1.0, 9);
        let b = planted_partition(60, 2, 4.0, 1.0, 9);
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.labels, b.labels);
    }
}
