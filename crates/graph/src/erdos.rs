//! Erdős–Rényi G(n, m) uniform random graphs.
//!
//! Used by the test suite as the "no skew" counterpoint to RMAT, and by
//! the ablation benchmarks to isolate the effect of degree imbalance on
//! the load-balanced partitioner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_sparse::coo::{Coo, Dedup};
use fusedmm_sparse::csr::Csr;

/// Generate an undirected G(n, m) graph: `nedges` distinct endpoints
/// drawn uniformly, mirrored, deduplicated, no self loops.
pub fn erdos_renyi(nvertices: usize, nedges: usize, seed: u64) -> Csr {
    assert!(nvertices >= 2, "need at least two vertices");
    let max_edges = nvertices * (nvertices - 1) / 2;
    assert!(
        nedges <= max_edges,
        "cannot place {nedges} simple undirected edges in a {nvertices}-vertex graph"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(nvertices, nvertices, 2 * nedges);
    let mut placed = 0usize;
    // For sparse graphs rejection sampling terminates fast; we tolerate
    // duplicates here and let Dedup::Last merge them, topping up until
    // the requested count of *distinct* edges is unlikely to be missed
    // badly (exact distinctness is enforced only for small dense cases).
    let dense = nedges * 3 > max_edges;
    if dense {
        // Enumerate all pairs and sample without replacement.
        let mut pairs: Vec<(usize, usize)> =
            (0..nvertices).flat_map(|u| ((u + 1)..nvertices).map(move |v| (u, v))).collect();
        for i in 0..nedges {
            let j = rng.gen_range(i..pairs.len());
            pairs.swap(i, j);
            let (u, v) = pairs[i];
            coo.push_symmetric(u, v, 1.0);
        }
    } else {
        use std::collections::HashSet;
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(nedges * 2);
        while placed < nedges {
            let u = rng.gen_range(0..nvertices);
            let v = rng.gen_range(0..nvertices);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                coo.push_symmetric(key.0, key.1, 1.0);
                placed += 1;
            }
        }
    }
    coo.to_csr(Dedup::Last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(100, 300, 5);
        assert_eq!(g.nnz(), 600); // undirected: each edge stored twice
    }

    #[test]
    fn symmetric_and_loop_free() {
        let g = erdos_renyi(64, 200, 7);
        for (r, c, _) in g.iter() {
            assert_ne!(r, c);
            assert_eq!(g.get(c, r), Some(1.0));
        }
    }

    #[test]
    fn dense_path_samples_without_replacement() {
        // 10 vertices, 40 of max 45 edges -> dense path.
        let g = erdos_renyi(10, 40, 3);
        assert_eq!(g.nnz(), 80);
    }

    #[test]
    fn complete_graph_possible() {
        let g = erdos_renyi(6, 15, 1);
        assert_eq!(g.nnz(), 30);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn reproducible() {
        assert_eq!(erdos_renyi(50, 100, 11), erdos_renyi(50, 100, 11));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_edges_panics() {
        let _ = erdos_renyi(4, 100, 0);
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = erdos_renyi(500, 5000, 13);
        // avg degree = 20; in G(n,m) the max should stay within a small
        // multiple (binomial concentration), unlike RMAT.
        assert!(g.max_degree() < 3 * 20, "max degree {}", g.max_degree());
    }
}
