//! RMAT (recursive matrix) graph generator — our PaRMAT equivalent.
//!
//! The paper generates RMAT graphs with PaRMAT \[14\] for the parameter
//! sensitivity study (Fig. 11a: 100K vertices, average degree swept from
//! 10 to 150). RMAT recursively drops each edge into one of the four
//! quadrants of the adjacency matrix with probabilities `(a, b, c, d)`;
//! the default `(0.45, 0.22, 0.22, 0.11)` skew yields the heavy-tailed
//! degree distributions of real social networks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_sparse::coo::{Coo, Dedup};
use fusedmm_sparse::csr::Csr;

/// Configuration for the RMAT generator.
#[derive(Debug, Clone)]
pub struct RmatConfig {
    /// Number of vertices. Need not be a power of two; samples that land
    /// beyond `nvertices` are re-drawn.
    pub nvertices: usize,
    /// Number of directed edges to generate (before dedup; see
    /// `dedup`).
    pub nedges: usize,
    /// Quadrant probabilities; must be positive and sum to ~1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// Add the reverse of every edge (undirected graph).
    pub undirected: bool,
    /// Remove self loops.
    pub no_self_loops: bool,
    /// RNG seed, so benchmarks are reproducible.
    pub seed: u64,
}

impl RmatConfig {
    /// The standard skewed parameterization used throughout graph
    /// benchmarking (Graph500 uses 0.57/0.19/0.19/0.05; PaRMAT's default
    /// is 0.45/0.22/0.22/0.11 which we follow).
    pub fn new(nvertices: usize, nedges: usize) -> Self {
        RmatConfig {
            nvertices,
            nedges,
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
            undirected: true,
            no_self_loops: true,
            seed: 1,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style directedness override.
    pub fn directed(mut self) -> Self {
        self.undirected = false;
        self
    }
}

/// Generate an RMAT graph as CSR with duplicate removal: sampling
/// continues until `nedges` *distinct* edges are placed (like PaRMAT's
/// duplicate-removal mode), bounded by an attempt cap so adversarial
/// parameters (requested edges near the skewed region's capacity)
/// terminate with slightly fewer edges instead of looping forever.
pub fn rmat(cfg: &RmatConfig) -> Csr {
    let total = cfg.a + cfg.b + cfg.c + cfg.d;
    assert!(
        (total - 1.0).abs() < 1e-6 && cfg.a > 0.0 && cfg.b > 0.0 && cfg.c > 0.0 && cfg.d > 0.0,
        "RMAT probabilities must be positive and sum to 1 (got {total})"
    );
    assert!(cfg.nvertices > 0, "RMAT needs at least one vertex");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Number of recursion levels: cover nvertices with the next power of two.
    let levels = usize::BITS - (cfg.nvertices - 1).max(1).leading_zeros();
    let side = 1usize << levels;
    let cap = if cfg.undirected { 2 * cfg.nedges } else { cfg.nedges };
    let mut coo = Coo::with_capacity(cfg.nvertices, cfg.nvertices, cap);
    let mut seen: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::with_capacity(cfg.nedges * 2);
    let mut emitted = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cfg.nedges.saturating_mul(40).max(1024);
    while emitted < cfg.nedges && attempts < max_attempts {
        attempts += 1;
        let (u, v) = sample_edge(&mut rng, levels, side, cfg);
        if u >= cfg.nvertices || v >= cfg.nvertices {
            continue;
        }
        if cfg.no_self_loops && u == v {
            continue;
        }
        let key = if cfg.undirected { (u.min(v), u.max(v)) } else { (u, v) };
        if !seen.insert(key) {
            continue;
        }
        if cfg.undirected {
            coo.push_symmetric(u, v, 1.0);
        } else {
            coo.push(u, v, 1.0);
        }
        emitted += 1;
    }
    coo.to_csr(Dedup::Last)
}

fn sample_edge(rng: &mut StdRng, levels: u32, side: usize, cfg: &RmatConfig) -> (usize, usize) {
    let mut row = 0usize;
    let mut col = 0usize;
    let mut half = side >> 1;
    for _ in 0..levels {
        let r: f64 = rng.gen();
        // Per-level probability noise (±10%) keeps degree sequences from
        // being too regular, as PaRMAT does.
        let noise = 0.9 + 0.2 * rng.gen::<f64>();
        let a = cfg.a * noise;
        let ab = a + cfg.b;
        let abc = ab + cfg.c;
        let norm = abc + cfg.d;
        let r = r * norm;
        if r < a {
            // top-left: nothing to add
        } else if r < ab {
            col += half;
        } else if r < abc {
            row += half;
        } else {
            row += half;
            col += half;
        }
        half >>= 1;
    }
    (row, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_vertex_bound() {
        // A non-power-of-two vertex count exercises rejection sampling.
        let g = rmat(&RmatConfig::new(1000, 5000));
        assert_eq!(g.nrows(), 1000);
        assert_eq!(g.ncols(), 1000);
        for (_, c, _) in g.iter() {
            assert!(c < 1000);
        }
    }

    #[test]
    fn undirected_graph_is_symmetric() {
        let g = rmat(&RmatConfig::new(256, 1000));
        for (r, c, _) in g.iter() {
            assert_eq!(g.get(c, r), Some(1.0), "missing mirror of ({r},{c})");
        }
    }

    #[test]
    fn no_self_loops_by_default() {
        let g = rmat(&RmatConfig::new(128, 2000));
        for (r, c, _) in g.iter() {
            assert_ne!(r, c);
        }
    }

    #[test]
    fn edge_count_close_to_requested() {
        // After dedup nnz <= 2 * nedges; with a sparse region it should
        // retain the large majority.
        let cfg = RmatConfig::new(4096, 8000);
        let g = rmat(&cfg);
        assert!(g.nnz() <= 2 * cfg.nedges);
        assert!(g.nnz() >= (2 * cfg.nedges) * 7 / 10, "too many duplicates: {}", g.nnz());
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = rmat(&RmatConfig::new(512, 2000).with_seed(9));
        let b = rmat(&RmatConfig::new(512, 2000).with_seed(9));
        let c = rmat(&RmatConfig::new(512, 2000).with_seed(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // RMAT's defining property: max degree far above average degree.
        let g = rmat(&RmatConfig::new(2048, 20000));
        let avg = g.avg_degree();
        let max = g.max_degree() as f64;
        assert!(max > 4.0 * avg, "max {max} vs avg {avg} not skewed");
    }

    #[test]
    fn directed_variant_need_not_be_symmetric() {
        let g = rmat(&RmatConfig::new(256, 1500).directed());
        let asym = g.iter().any(|(r, c, _)| g.get(c, r).is_none());
        assert!(asym, "directed RMAT should contain one-way edges");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_panic() {
        let mut cfg = RmatConfig::new(16, 16);
        cfg.a = 0.9;
        let _ = rmat(&cfg);
    }
}
