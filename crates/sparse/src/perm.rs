//! Vertex permutations — the substrate of graph reordering.
//!
//! A [`Permutation`] pairs a bijection `new_of_old` with its inverse
//! `old_of_new`, so both directions of the rename are O(1). Reordering
//! algorithms (degree sort, RCM — see `fusedmm-graph`) produce one;
//! [`Csr::permute_symmetric`] and the row-permutation helpers here
//! apply it as a pure transformation. Serving engines keep the
//! permutation at the scatter/gather boundary so external vertex ids
//! never change.

use crate::csr::Csr;
use crate::dense::Dense;

/// A bijection on `0..n` stored together with its inverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<usize>,
    old_of_new: Vec<usize>,
}

impl Permutation {
    /// Build from the forward map `new_of_old` (old id → new id),
    /// validating it is a bijection on `0..len`.
    ///
    /// # Panics
    /// Panics when the map is not a permutation.
    pub fn from_new_of_old(new_of_old: Vec<usize>) -> Self {
        let n = new_of_old.len();
        let mut old_of_new = vec![usize::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            assert!(new < n, "permutation image {new} out of range for {n} ids");
            assert!(old_of_new[new] == usize::MAX, "permutation maps two ids to {new}");
            old_of_new[new] = old;
        }
        Permutation { new_of_old, old_of_new }
    }

    /// Build from the inverse map `old_of_new` (new id → old id).
    ///
    /// # Panics
    /// Panics when the map is not a permutation.
    pub fn from_old_of_new(old_of_new: Vec<usize>) -> Self {
        let inv = Permutation::from_new_of_old(old_of_new);
        Permutation { new_of_old: inv.old_of_new, old_of_new: inv.new_of_old }
    }

    /// The identity on `0..n`.
    pub fn identity(n: usize) -> Self {
        let id: Vec<usize> = (0..n).collect();
        Permutation { new_of_old: id.clone(), old_of_new: id }
    }

    /// Number of ids the permutation acts on.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True when the permutation acts on zero ids.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// Forward map: the new id of old id `old`.
    pub fn to_new(&self, old: usize) -> usize {
        self.new_of_old[old]
    }

    /// Inverse map: the old id of new id `new`.
    pub fn to_old(&self, new: usize) -> usize {
        self.old_of_new[new]
    }

    /// The full forward map (old id → new id).
    pub fn new_of_old(&self) -> &[usize] {
        &self.new_of_old
    }

    /// The full inverse map (new id → old id).
    pub fn old_of_new(&self) -> &[usize] {
        &self.old_of_new
    }

    /// Map a batch of old ids to new ids.
    pub fn map_to_new(&self, ids: &[usize]) -> Vec<usize> {
        ids.iter().map(|&u| self.new_of_old[u]).collect()
    }

    /// Map a batch of new ids back to old ids.
    pub fn map_to_old(&self, ids: &[usize]) -> Vec<usize> {
        ids.iter().map(|&u| self.old_of_new[u]).collect()
    }

    /// Apply as a symmetric permutation `P·A·Pᵀ` (see
    /// [`Csr::permute_symmetric`] — per-row neighbor order is
    /// preserved for bit-identical accumulation).
    pub fn permute_csr(&self, a: &Csr) -> Csr {
        a.permute_symmetric(&self.new_of_old, &self.old_of_new)
    }

    /// Reorder the rows of a dense matrix into the new id space:
    /// `out.row(to_new(u)) == m.row(u)`.
    pub fn permute_rows(&self, m: &Dense) -> Dense {
        assert_eq!(m.nrows(), self.len(), "row count != permutation length");
        let mut out = Dense::zeros(m.nrows(), m.ncols());
        for (i, &old) in self.old_of_new.iter().enumerate() {
            out.row_mut(i).copy_from_slice(m.row(old));
        }
        out
    }

    /// Reorder the rows of a dense matrix back into the old id space:
    /// `out.row(u) == m.row(to_new(u))`. Inverse of
    /// [`Permutation::permute_rows`].
    pub fn unpermute_rows(&self, m: &Dense) -> Dense {
        assert_eq!(m.nrows(), self.len(), "row count != permutation length");
        let mut out = Dense::zeros(m.nrows(), m.ncols());
        for (old, &new) in self.new_of_old.iter().enumerate() {
            out.row_mut(old).copy_from_slice(m.row(new));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_inverse_round_trip() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1, 3]);
        for old in 0..4 {
            assert_eq!(p.to_old(p.to_new(old)), old);
        }
        for new in 0..4 {
            assert_eq!(p.to_new(p.to_old(new)), new);
        }
        let ids = [3usize, 1, 1, 0];
        assert_eq!(p.map_to_old(&p.map_to_new(&ids)), ids);
    }

    #[test]
    fn from_old_of_new_inverts() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]);
        let q = Permutation::from_old_of_new(p.old_of_new().to_vec());
        assert_eq!(p, q);
    }

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(5);
        assert_eq!(p.len(), 5);
        for i in 0..5 {
            assert_eq!(p.to_new(i), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_image() {
        let _ = Permutation::from_new_of_old(vec![0, 5]);
    }

    #[test]
    #[should_panic(expected = "maps two ids")]
    fn rejects_duplicate_image() {
        let _ = Permutation::from_new_of_old(vec![1, 1, 0]);
    }

    #[test]
    fn permute_rows_then_unpermute_is_identity() {
        let p = Permutation::from_new_of_old(vec![1, 3, 0, 2]);
        let m = Dense::from_fn(4, 3, |r, c| (10 * r + c) as f32);
        let pm = p.permute_rows(&m);
        for old in 0..4 {
            assert_eq!(pm.row(p.to_new(old)), m.row(old));
        }
        assert_eq!(p.unpermute_rows(&pm).as_slice(), m.as_slice());
    }
}
