//! Coordinate-format sparse matrices.
//!
//! COO is the assembly format: graph generators and file readers emit
//! `(row, col, value)` triples which are then compressed to [`Csr`] for
//! the kernels. Duplicate handling is explicit — graph generators such
//! as RMAT naturally produce duplicate edges, and the caller chooses to
//! sum them or keep the last occurrence.

use crate::csr::Csr;
use crate::error::SparseError;

/// How duplicate `(row, col)` entries are merged during compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dedup {
    /// Sum the values of duplicates (standard sparse-matrix semantics).
    Sum,
    /// Keep the last value seen (graph-edge semantics for unweighted
    /// graphs where duplicates are just repeated edges).
    Last,
}

/// A sparse matrix as a list of `(row, col, value)` triples.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f32)>,
}

impl Coo {
    /// Create an empty COO matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo { nrows, ncols, entries: Vec::new() }
    }

    /// Create with pre-reserved capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo { nrows, ncols, entries: Vec::with_capacity(cap) }
    }

    /// Build directly from a triple list, validating bounds.
    pub fn from_entries(
        nrows: usize,
        ncols: usize,
        entries: Vec<(usize, usize, f32)>,
    ) -> Result<Self, SparseError> {
        for &(r, c, _) in &entries {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, nrows, ncols });
            }
        }
        Ok(Coo { nrows, ncols, entries })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including not-yet-merged duplicates).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored triples.
    pub fn entries(&self) -> &[(usize, usize, f32)] {
        &self.entries
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Panics if the entry is out of bounds; generators are expected to
    /// produce in-range indices and this is a programming error.
    pub fn push(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) outside {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, value));
    }

    /// Append the symmetric pair `(u, v)` and `(v, u)` — undirected edge.
    pub fn push_symmetric(&mut self, u: usize, v: usize, value: f32) {
        self.push(u, v, value);
        if u != v {
            self.push(v, u, value);
        }
    }

    /// Compress into CSR, merging duplicates per `dedup` and sorting
    /// column indices within each row.
    pub fn to_csr(&self, dedup: Dedup) -> Csr {
        Csr::from_coo(self, dedup)
    }

    /// Transpose by swapping coordinates (O(nnz)).
    pub fn transpose(&self) -> Coo {
        Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_shape() {
        let mut c = Coo::new(3, 4);
        c.push(0, 0, 1.0);
        c.push(2, 3, 2.0);
        assert_eq!(c.nnz(), 2);
        assert_eq!((c.nrows(), c.ncols()), (3, 4));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_out_of_bounds_panics() {
        let mut c = Coo::new(2, 2);
        c.push(2, 0, 1.0);
    }

    #[test]
    fn from_entries_validates() {
        let err = Coo::from_entries(2, 2, vec![(0, 5, 1.0)]);
        assert!(matches!(err, Err(SparseError::IndexOutOfBounds { .. })));
        let ok = Coo::from_entries(2, 2, vec![(0, 1, 1.0)]);
        assert!(ok.is_ok());
    }

    #[test]
    fn symmetric_push_adds_both_directions() {
        let mut c = Coo::new(3, 3);
        c.push_symmetric(0, 1, 1.0);
        assert_eq!(c.nnz(), 2);
        // self-loop only stored once
        c.push_symmetric(2, 2, 1.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let c = Coo::from_entries(2, 3, vec![(0, 2, 5.0), (1, 0, 7.0)]).unwrap();
        let t = c.transpose();
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
        assert!(t.entries().contains(&(2, 0, 5.0)));
        assert!(t.entries().contains(&(0, 1, 7.0)));
    }
}
