//! Sparse and dense matrix substrate for the FusedMM kernel.
//!
//! The FusedMM paper (IPDPS 2021) computes `Z = FusedMM(A, X, Y)` where
//! `A` is an `m × n` sparse adjacency matrix in Compressed Sparse Row
//! (CSR) form, `X` is an `m × d` dense feature matrix, `Y` is an `n × d`
//! dense feature matrix, and `Z` is the `m × d` output. This crate
//! provides those containers plus the supporting formats used while
//! building them:
//!
//! * [`Coo`] — coordinate-format triples, the natural output of graph
//!   generators and file readers;
//! * [`Csr`] — the kernel input format, with O(1) row access;
//! * [`Csc`] — column-compressed form, used for transpose-side access;
//! * [`Dense`] — row-major dense matrices over 64-byte-aligned storage;
//! * [`Permutation`] — vertex renumbering with O(1) forward and inverse
//!   maps, applied symmetrically to [`Csr`] by graph-reordering passes;
//! * row slicing ([`mod@slice`]) to extract the minibatch submatrices the
//!   paper's problem setting describes (a rectangular slice of the
//!   adjacency matrix plus the matching rows of `X`);
//! * Matrix Market / edge-list IO ([`io`]).
//!
//! All indices are `usize` and all values default to `f32`, matching the
//! paper's single-precision evaluation and its 8-byte-index + 4-byte-value
//! memory model (12 bytes per nonzero).

pub mod aligned;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod io;
pub mod perm;
pub mod slice;

pub use aligned::AlignedVec;
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::SparseError;
pub use perm::Permutation;

/// Number of bytes the paper charges per stored nonzero of `A`
/// (8-byte index + 4-byte single-precision value).
pub const BYTES_PER_NNZ: usize = 12;

/// Estimated bytes to store the FusedMM operands per the paper's §IV-C
/// memory model: `8·m·d + 4·n·d + 12·nnz` (X and Z at `4·m·d` each,
/// Y at `4·n·d`, A at 12 bytes per nonzero).
pub fn fusedmm_bytes(m: usize, n: usize, nnz: usize, d: usize) -> usize {
    8 * m * d + 4 * n * d + BYTES_PER_NNZ * nnz
}

/// Extra bytes an *unfused* SDDMM→SpMM pipeline needs for the
/// intermediate message matrix `H` when each edge carries a `msg_dim`-
/// dimensional message (`12·nnz·msg_dim` per the paper's model; for
/// scalar messages `msg_dim = 1`).
pub fn unfused_intermediate_bytes(nnz: usize, msg_dim: usize) -> usize {
    BYTES_PER_NNZ * nnz * msg_dim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_model_matches_paper_formula() {
        // Eq. in §IV-C: 8md + 4nd + 12nnz.
        assert_eq!(fusedmm_bytes(10, 20, 100, 8), 8 * 10 * 8 + 4 * 20 * 8 + 12 * 100);
    }

    #[test]
    fn unfused_h_grows_linearly_with_message_dim() {
        let scalar = unfused_intermediate_bytes(1000, 1);
        let vector = unfused_intermediate_bytes(1000, 128);
        assert_eq!(vector, 128 * scalar);
    }
}
