//! Cache-line-aligned growable buffer.
//!
//! The register-blocked FusedMM kernels stream rows of `X`, `Y`, and `Z`
//! through SIMD registers. Aligning the backing storage to 64 bytes keeps
//! every `d`-dimensional row load starting on a cache-line boundary when
//! `d` is a multiple of 16 (f32), which is the common case in the paper
//! (d ∈ {32, 64, 128, 256, 512}).

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment in bytes for all kernel-facing buffers (one x86 cache line;
/// also the AVX-512 vector width).
pub const CACHE_LINE: usize = 64;

/// A fixed-capacity, 64-byte-aligned, zero-initialized `f32` buffer.
///
/// Unlike `Vec<f32>` the allocation is guaranteed to start on a cache
/// line. The length is fixed at construction; elements are mutated in
/// place. This mirrors how the reference implementation allocates its
/// dense operands once and reuses them across iterations.
pub struct AlignedVec {
    ptr: NonNull<f32>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively; f32 is Send + Sync.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocate `len` zeroed f32 values aligned to [`CACHE_LINE`] bytes.
    ///
    /// A zero-length buffer performs no allocation.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedVec { ptr: NonNull::dangling(), len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has nonzero size because len > 0.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f32>()) else {
            handle_alloc_error(layout);
        };
        AlignedVec { ptr, len }
    }

    /// Build from a slice, copying the contents into aligned storage.
    pub fn from_slice(data: &[f32]) -> Self {
        let mut v = Self::zeroed(data.len());
        v.copy_from_slice(data);
        v
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f32>(), CACHE_LINE)
            .expect("aligned layout overflow")
    }

    /// Number of f32 elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reset every element to zero.
    pub fn fill_zero(&mut self) {
        self.as_mut_slice().fill(0.0);
    }

    /// View as an immutable slice.
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: ptr is valid for len f32s for the life of self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// View as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: ptr is valid for len f32s and we hold &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated with the identical layout in `zeroed`.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) }
        }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl Deref for AlignedVec {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec").field("len", &self.len).finish()
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_cache_line_aligned() {
        for len in [1usize, 7, 16, 1000, 4096] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.as_slice().as_ptr() as usize % CACHE_LINE, 0, "len={len}");
            assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn zeroed_is_all_zero() {
        let v = AlignedVec::zeroed(513);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_buffer_is_fine() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f32]);
    }

    #[test]
    fn from_slice_round_trips() {
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let v = AlignedVec::from_slice(&data);
        assert_eq!(v.as_slice(), data.as_slice());
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::from_slice(&[1.0, 2.0, 3.0]);
        let b = a.clone();
        a[0] = 9.0;
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn fill_zero_resets() {
        let mut v = AlignedVec::from_slice(&[1.0; 32]);
        v.fill_zero();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v = AlignedVec::zeroed(4);
        v[2] = 42.0;
        assert_eq!(v.as_slice(), &[0.0, 0.0, 42.0, 0.0]);
    }
}
