//! Compressed Sparse Row matrices — the FusedMM kernel input format.
//!
//! The kernel iterates `for each row u: for each v with a_uv != 0`, so the
//! adjacency matrix is stored row-compressed: `rowptr[u]..rowptr[u+1]`
//! delimits the column indices and values of row `u`. Column indices are
//! kept sorted within each row (deterministic accumulation order, which
//! the equivalence tests rely on).

use crate::coo::{Coo, Dedup};
use crate::csc::Csc;
use crate::error::SparseError;

/// An `m × n` sparse matrix in CSR form with `f32` values.
#[derive(Debug, Clone)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    values: Vec<f32>,
    /// Whether every row's column indices are strictly ascending.
    /// [`Csr::permute_symmetric`] preserves the *original* neighbor
    /// order (for bit-identical accumulation) and so may produce
    /// unsorted rows; [`Csr::get`] falls back to a linear scan then.
    sorted_cols: bool,
}

/// Two matrices are equal when their shape and stored entries match;
/// the internal sortedness flag is derived state and excluded.
impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr == other.rowptr
            && self.colidx == other.colidx
            && self.values == other.values
    }
}

/// True when every row of (`rowptr`, `colidx`) has strictly ascending
/// column indices.
fn cols_sorted(rowptr: &[usize], colidx: &[usize]) -> bool {
    rowptr.windows(2).all(|w| colidx[w[0]..w[1]].windows(2).all(|c| c[0] < c[1]))
}

impl Csr {
    /// Build from raw parts, validating every structure invariant.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if rowptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "rowptr has {} entries, expected nrows + 1 = {}",
                rowptr.len(),
                nrows + 1
            )));
        }
        if rowptr[0] != 0 {
            return Err(SparseError::InvalidStructure("rowptr[0] must be 0".into()));
        }
        if colidx.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "colidx ({}) and values ({}) lengths differ",
                colidx.len(),
                values.len()
            )));
        }
        if *rowptr.last().unwrap() != colidx.len() {
            return Err(SparseError::InvalidStructure(format!(
                "rowptr[last] = {} but nnz = {}",
                rowptr.last().unwrap(),
                colidx.len()
            )));
        }
        if rowptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidStructure("rowptr not monotone".into()));
        }
        for (i, &c) in colidx.iter().enumerate() {
            if c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: rowptr.partition_point(|&p| p <= i).saturating_sub(1),
                    col: c,
                    nrows,
                    ncols,
                });
            }
        }
        let sorted_cols = cols_sorted(&rowptr, &colidx);
        Ok(Csr { nrows, ncols, rowptr, colidx, values, sorted_cols })
    }

    /// An empty matrix with no stored entries.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            values: Vec::new(),
            sorted_cols: true,
        }
    }

    /// Compress a COO matrix, merging duplicates and sorting each row's
    /// columns ascending.
    pub fn from_coo(coo: &Coo, dedup: Dedup) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        // Counting sort by row.
        let mut counts = vec![0usize; nrows + 1];
        for &(r, _, _) in coo.entries() {
            counts[r + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let mut order = counts.clone();
        let nnz_raw = coo.nnz();
        let mut colidx = vec![0usize; nnz_raw];
        let mut values = vec![0f32; nnz_raw];
        for &(r, c, v) in coo.entries() {
            let slot = order[r];
            colidx[slot] = c;
            values[slot] = v;
            order[r] += 1;
        }
        // Sort within each row and merge duplicates.
        let mut out_rowptr = vec![0usize; nrows + 1];
        let mut out_col = Vec::with_capacity(nnz_raw);
        let mut out_val = Vec::with_capacity(nnz_raw);
        let mut scratch: Vec<(usize, f32)> = Vec::new();
        for r in 0..nrows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            scratch.clear();
            scratch.extend(colidx[lo..hi].iter().copied().zip(values[lo..hi].iter().copied()));
            // Stable sort so Dedup::Last keeps the final occurrence.
            scratch.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    match dedup {
                        Dedup::Sum => v += scratch[j].1,
                        Dedup::Last => v = scratch[j].1,
                    }
                    j += 1;
                }
                out_col.push(c);
                out_val.push(v);
                i = j;
            }
            out_rowptr[r + 1] = out_col.len();
        }
        Csr {
            nrows,
            ncols,
            rowptr: out_rowptr,
            colidx: out_col,
            values: out_val,
            sorted_cols: true,
        }
    }

    /// Number of rows (`m`).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (`n`).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// The row pointer array (`nrows + 1` entries, first 0, last `nnz`).
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// All column indices, row-major.
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// All values, row-major.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable values (structure stays fixed).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Number of nonzeros in row `u` (its out-degree).
    pub fn row_nnz(&self, u: usize) -> usize {
        self.rowptr[u + 1] - self.rowptr[u]
    }

    /// The `(column, value)` pairs of row `u`.
    pub fn row(&self, u: usize) -> (&[usize], &[f32]) {
        let lo = self.rowptr[u];
        let hi = self.rowptr[u + 1];
        (&self.colidx[lo..hi], &self.values[lo..hi])
    }

    /// Iterate `(row, col, value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Look up a single entry — binary search when the row's columns
    /// are sorted (the common case), linear scan when a symmetric
    /// permutation left them in original-neighbor order.
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        let (cols, vals) = self.row(row);
        if self.sorted_cols {
            cols.binary_search(&col).ok().map(|i| vals[i])
        } else {
            cols.iter().position(|&c| c == col).map(|i| vals[i])
        }
    }

    /// Average number of nonzeros per row (the graph's average degree δ).
    pub fn avg_degree(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Maximum row nnz (maximum degree).
    pub fn max_degree(&self) -> usize {
        self.rowptr.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
    }

    /// Every row's nnz (out-degree) as one vector — the shared scan
    /// behind degree classification, truncation, reordering, and the
    /// degree histogram.
    pub fn row_degrees(&self) -> Vec<usize> {
        self.rowptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Degree histogram over log2 buckets: slot `i` counts the rows
    /// with degree in `[2^i, 2^{i+1})`. Degree-0 rows are excluded
    /// (isolated vertices are reported separately by graph stats).
    pub fn degree_histogram_log2(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        for d in self.row_degrees() {
            if d == 0 {
                continue;
            }
            let bucket = (usize::BITS - 1 - d.leading_zeros()) as usize;
            if bucket >= hist.len() {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        hist
    }

    /// Convert back to COO triples.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        coo
    }

    /// Column-compress (transpose the storage layout without transposing
    /// the matrix).
    pub fn to_csc(&self) -> Csc {
        Csc::from_csr(self)
    }

    /// The transposed matrix, in CSR form.
    pub fn transpose(&self) -> Csr {
        let t = self.to_coo().transpose();
        Csr::from_coo(&t, Dedup::Sum)
    }

    /// Bytes of storage per the paper's model: 12 bytes per nonzero plus
    /// the row-pointer array.
    pub fn storage_bytes(&self) -> usize {
        crate::BYTES_PER_NNZ * self.nnz() + 8 * (self.nrows + 1)
    }

    /// Replace every stored value with `v` (e.g. 1.0 for an unweighted
    /// adjacency matrix).
    pub fn fill_values(&mut self, v: f32) {
        self.values.fill(v);
    }

    /// Extract the contiguous row band `rows` as its own CSR matrix.
    ///
    /// The band uses **local row indexing** (band row `i` is global row
    /// `rows.start + i`) but keeps **global column indexing** (`ncols`
    /// unchanged) — the PART1D shard shape: a shard owns a row band of
    /// `A` while `Y` (the column space) stays global. Contiguity makes
    /// this a pair of slice copies, O(band nnz).
    ///
    /// # Panics
    /// Panics when `rows.end > nrows` or the range is inverted.
    pub fn row_band(&self, rows: std::ops::Range<usize>) -> Csr {
        assert!(
            rows.start <= rows.end && rows.end <= self.nrows,
            "row band {}..{} out of range for {} rows",
            rows.start,
            rows.end,
            self.nrows
        );
        let lo = self.rowptr[rows.start];
        let hi = self.rowptr[rows.end];
        let rowptr: Vec<usize> =
            self.rowptr[rows.start..=rows.end].iter().map(|&p| p - lo).collect();
        let colidx = self.colidx[lo..hi].to_vec();
        let sorted_cols = self.sorted_cols || cols_sorted(&rowptr, &colidx);
        Csr {
            nrows: rows.len(),
            ncols: self.ncols,
            rowptr,
            colidx,
            values: self.values[lo..hi].to_vec(),
            sorted_cols,
        }
    }

    /// Delta-invalidation touch set, for callers holding this matrix
    /// as the **reverse** adjacency `A^T` (row `v` of `A^T` lists the
    /// in-neighbors of vertex `v` — the rows of `A` whose support
    /// contains column `v`).
    ///
    /// Given the vertices `patched` by a feature delta update, returns
    /// the sorted, deduplicated set of `A`-row outputs that depend on
    /// any of them: the patched vertices themselves (their `X` rows
    /// changed) plus every in-neighbor (rows whose aggregation reads a
    /// patched `Y` row). Everything outside this set is provably
    /// unaffected by the patch — the precision that lets a result
    /// cache survive training-style row updates. Cost is
    /// O(Σ in-degree(patched) log), independent of the graph size.
    ///
    /// # Panics
    /// Panics when a patched id is not a row of this (reverse) matrix.
    pub fn touch_set(&self, patched: &[usize]) -> Vec<usize> {
        let mut touched: Vec<usize> = patched.to_vec();
        for &v in patched {
            assert!(v < self.nrows, "patched vertex {v} out of range for {} rows", self.nrows);
            touched.extend_from_slice(self.row(v).0);
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// Scale row `u`'s values by `s` — used to build the symmetric-
    /// normalized adjacency `D^{-1/2} A D^{-1/2}` for GCN.
    pub fn scale_row(&mut self, u: usize, s: f32) {
        let lo = self.rowptr[u];
        let hi = self.rowptr[u + 1];
        for v in &mut self.values[lo..hi] {
            *v *= s;
        }
    }

    /// Truncate each row to its `k` strongest neighbors (largest
    /// `|value|`; ties keep the lower column id, so the result is
    /// deterministic). Rows with at most `k` nonzeros are unchanged;
    /// the kept entries stay column-sorted, preserving the
    /// deterministic accumulation order the kernels rely on. This is
    /// the degraded-tier neighbor index: aggregating over the
    /// truncated matrix approximates the exact answer at a fraction of
    /// the flops, with error concentrated on heavy rows.
    pub fn top_k_by_weight(&self, k: usize) -> Csr {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::with_capacity(self.nnz().min(self.nrows.saturating_mul(k)));
        let mut values = Vec::with_capacity(colidx.capacity());
        let mut order: Vec<usize> = Vec::new();
        let degrees = self.row_degrees();
        for u in 0..self.nrows {
            let (cols, vals) = self.row(u);
            if degrees[u] <= k {
                colidx.extend_from_slice(cols);
                values.extend_from_slice(vals);
            } else {
                order.clear();
                order.extend(0..cols.len());
                order.sort_by(|&i, &j| {
                    vals[j]
                        .abs()
                        .partial_cmp(&vals[i].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(cols[i].cmp(&cols[j]))
                });
                order.truncate(k);
                // Entries within a row are column-sorted, so sorting the
                // surviving indices restores canonical order.
                order.sort_unstable();
                for &i in order.iter() {
                    colidx.push(cols[i]);
                    values.push(vals[i]);
                }
            }
            rowptr.push(colidx.len());
        }
        let sorted_cols = self.sorted_cols || cols_sorted(&rowptr, &colidx);
        Csr { nrows: self.nrows, ncols: self.ncols, rowptr, colidx, values, sorted_cols }
    }

    /// Symmetric permutation `P·A·Pᵀ` of a square matrix: new row `i`
    /// is old row `old_of_new[i]` with every column `c` relabeled to
    /// `new_of_old[c]`.
    ///
    /// Each row keeps its **original neighbor order** — columns are
    /// deliberately *not* re-sorted, so the kernels fold a permuted
    /// row's neighbors in exactly the order of the unpermuted matrix
    /// and the output is bit-identical under the permutation. The
    /// resulting rows may therefore be column-unsorted; [`Csr::get`]
    /// handles that transparently.
    ///
    /// # Panics
    /// Panics when the matrix is not square or either permutation
    /// array's length differs from the dimension. The two arrays are
    /// trusted to be mutually inverse bijections (the `Permutation`
    /// type in this crate guarantees it).
    pub fn permute_symmetric(&self, new_of_old: &[usize], old_of_new: &[usize]) -> Csr {
        assert_eq!(self.nrows, self.ncols, "symmetric permutation needs a square matrix");
        assert_eq!(new_of_old.len(), self.nrows, "permutation length != dimension");
        assert_eq!(old_of_new.len(), self.nrows, "inverse permutation length != dimension");
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for &u in old_of_new {
            let (cols, vals) = self.row(u);
            colidx.extend(cols.iter().map(|&c| new_of_old[c]));
            values.extend_from_slice(vals);
            rowptr.push(colidx.len());
        }
        let sorted_cols = cols_sorted(&rowptr, &colidx);
        Csr { nrows: self.nrows, ncols: self.ncols, rowptr, colidx, values, sorted_cols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_parts(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn from_parts_accepts_valid() {
        let m = small();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn from_parts_rejects_bad_rowptr_len() {
        let r = Csr::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(r, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn from_parts_rejects_nonmonotone_rowptr() {
        let r = Csr::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(r, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn from_parts_rejects_col_out_of_range() {
        let r = Csr::from_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]);
        assert!(matches!(r, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn from_parts_rejects_len_mismatch() {
        let r = Csr::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0]);
        assert!(matches!(r, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn get_finds_entries() {
        let m = small();
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(2, 1), Some(4.0));
    }

    #[test]
    fn coo_round_trip_preserves_entries() {
        let m = small();
        let back = m.to_coo().to_csr(Dedup::Sum);
        assert_eq!(m, back);
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(0, 1, 2.5);
        let m = c.to_csr(Dedup::Sum);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), Some(3.5));
    }

    #[test]
    fn from_coo_last_keeps_final() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(0, 1, 2.5);
        let m = c.to_csr(Dedup::Last);
        assert_eq!(m.get(0, 1), Some(2.5));
    }

    #[test]
    fn from_coo_sorts_columns() {
        let mut c = Coo::new(1, 5);
        c.push(0, 4, 4.0);
        c.push(0, 1, 1.0);
        c.push(0, 3, 3.0);
        let m = c.to_csr(Dedup::Sum);
        assert_eq!(m.row(0).0, &[1, 3, 4]);
    }

    #[test]
    fn transpose_is_involutive() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_moves_entries() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.get(0, 2), Some(3.0));
    }

    #[test]
    fn degree_statistics() {
        let m = small();
        assert!((m.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.max_degree(), 2);
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::empty(4, 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.max_degree(), 0);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn scale_row_multiplies_only_that_row() {
        let mut m = small();
        m.scale_row(0, 10.0);
        assert_eq!(m.get(0, 0), Some(10.0));
        assert_eq!(m.get(2, 0), Some(3.0));
    }

    #[test]
    fn fill_values_sets_all() {
        let mut m = small();
        m.fill_values(1.0);
        assert!(m.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn row_band_keeps_local_rows_and_global_columns() {
        let m = small();
        let band = m.row_band(1..3);
        assert_eq!((band.nrows(), band.ncols()), (2, 3));
        assert_eq!(band.nnz(), 2);
        // Local row 0 is global row 1 (empty); local row 1 is global
        // row 2 with its global column ids intact.
        assert_eq!(band.row_nnz(0), 0);
        assert_eq!(band.row(1).0, &[0, 1]);
        assert_eq!(band.row(1).1, &[3.0, 4.0]);
        assert_eq!(band.rowptr(), &[0, 0, 2]);
    }

    #[test]
    fn row_band_of_everything_is_the_matrix() {
        let m = small();
        assert_eq!(m.row_band(0..3), m);
    }

    #[test]
    fn row_band_may_be_empty() {
        let m = small();
        let band = m.row_band(1..1);
        assert_eq!((band.nrows(), band.ncols(), band.nnz()), (0, 3, 0));
        assert_eq!(band.rowptr(), &[0]);
    }

    #[test]
    fn row_bands_tile_the_matrix() {
        let m = small();
        let cuts = [0usize, 1, 3];
        let mut entries = Vec::new();
        for w in cuts.windows(2) {
            let band = m.row_band(w[0]..w[1]);
            for (r, c, v) in band.iter() {
                entries.push((w[0] + r, c, v));
            }
        }
        assert_eq!(entries, m.iter().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_band_rejects_overrun() {
        let _ = small().row_band(2..4);
    }

    #[test]
    fn touch_set_is_patched_plus_in_neighbors() {
        // A: 0→{0,2}, 2→{0,1}. Reverse adjacency rows list in-neighbors.
        let rev = small().transpose();
        // Patch vertex 2: in-neighbors(2) = {0} (only a_02 ≠ 0).
        assert_eq!(rev.touch_set(&[2]), vec![0, 2]);
        // Patch vertex 0: rows 0 and 2 both read y_0; plus 0 itself.
        assert_eq!(rev.touch_set(&[0]), vec![0, 2]);
        // Patch vertex 1: only row 2 reads y_1.
        assert_eq!(rev.touch_set(&[1]), vec![1, 2]);
        // Duplicates and unions dedup; empty patch is empty.
        assert_eq!(rev.touch_set(&[1, 1, 2]), vec![0, 1, 2]);
        assert_eq!(rev.touch_set(&[]), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touch_set_rejects_bad_vertex() {
        let _ = small().transpose().touch_set(&[3]);
    }

    #[test]
    fn storage_matches_paper_model() {
        let m = small();
        assert_eq!(m.storage_bytes(), 12 * 4 + 8 * 4);
    }

    #[test]
    fn top_k_keeps_strongest_neighbors_column_sorted() {
        // Row 0: weights |2.0|, |-5.0|, |1.0| on cols 1, 3, 4.
        let mut coo = Coo::new(3, 5);
        coo.push(0, 1, 2.0);
        coo.push(0, 3, -5.0);
        coo.push(0, 4, 1.0);
        coo.push(1, 0, 1.0); // short row: unchanged
        let a = coo.to_csr(Dedup::Sum);
        let t = a.top_k_by_weight(2);
        assert_eq!(t.row(0), (&[1usize, 3][..], &[2.0f32, -5.0][..]), "keeps |2|,|−5|; drops |1|");
        assert_eq!(t.row(1), (&[0usize][..], &[1.0f32][..]));
        assert_eq!(t.row(2), (&[][..], &[][..]));
        assert_eq!((t.nrows(), t.ncols(), t.nnz()), (3, 5, 3));
        // k covering every row is the identity.
        assert_eq!(a.top_k_by_weight(3), a);
        // Ties keep the lower column id.
        let mut tie = Coo::new(1, 4);
        tie.push(0, 1, 1.0);
        tie.push(0, 2, -1.0);
        tie.push(0, 3, 1.0);
        let t = tie.to_csr(Dedup::Sum).top_k_by_weight(2);
        assert_eq!(t.row(0), (&[1usize, 2][..], &[1.0f32, -1.0][..]));
        // k == 0 empties every row but keeps the shape.
        let z = a.top_k_by_weight(0);
        assert_eq!((z.nrows(), z.ncols(), z.nnz()), (3, 5, 0));
    }

    #[test]
    fn row_degrees_and_histogram() {
        let m = small();
        assert_eq!(m.row_degrees(), vec![2, 0, 2]);
        // Two rows of degree 2 land in bucket 1 = [2, 4); degree-0
        // row excluded.
        assert_eq!(m.degree_histogram_log2(), vec![0, 2]);
        assert_eq!(Csr::empty(3, 3).degree_histogram_log2(), Vec::<usize>::new());
    }

    #[test]
    fn permute_symmetric_relabels_and_preserves_neighbor_order() {
        // Symmetric 3-path 0—1, 1—2 plus self loop on 0.
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 5.0);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        c.push(1, 2, 2.0);
        c.push(2, 1, 2.0);
        let a = c.to_csr(Dedup::Sum);
        // Reverse order: old 0↔2.
        let new_of_old = [2usize, 1, 0];
        let old_of_new = [2usize, 1, 0];
        let p = a.permute_symmetric(&new_of_old, &old_of_new);
        // Every entry survives under relabeling.
        assert_eq!(p.nnz(), a.nnz());
        for (r, cset, v) in a.iter() {
            assert_eq!(p.get(new_of_old[r], new_of_old[cset]), Some(v));
        }
        // New row 2 is old row 0 with neighbors in *original* order
        // (old cols [0, 1] → new cols [2, 1]: descending, unsorted).
        assert_eq!(p.row(2).0, &[2, 1]);
        assert_eq!(p.row(2).1, &[5.0, 1.0]);
        // Unsorted lookup still works (linear-scan path).
        assert_eq!(p.get(2, 1), Some(1.0));
        assert_eq!(p.get(2, 0), None);
        // Identity permutation is a no-op and stays sorted.
        let id = [0usize, 1, 2];
        assert_eq!(a.permute_symmetric(&id, &id), a);
    }
}
