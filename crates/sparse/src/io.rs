//! Matrix Market and edge-list readers/writers.
//!
//! The paper's datasets come from networkrepository.com and the
//! SuiteSparse collection, both of which distribute Matrix Market
//! (`.mtx`) files; many graph tools exchange whitespace-separated edge
//! lists. Both formats are supported so the benchmark harness can also
//! run on real downloads when they are available.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::coo::{Coo, Dedup};
use crate::csr::Csr;
use crate::error::SparseError;

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// Every entry is stored explicitly.
    General,
    /// Only the lower triangle is stored; mirror entries are implied.
    Symmetric,
}

/// Parse a Matrix Market coordinate file from any reader.
///
/// Supports `real`, `integer` and `pattern` fields with `general` or
/// `symmetric` symmetry. `pattern` entries get value 1.0. Indices in the
/// file are 1-based per the format specification.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Coo, SparseError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header line: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (_, header) =
        lines.next().ok_or_else(|| SparseError::Parse { line: 1, message: "empty file".into() })?;
    let header = header?;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse {
            line: 1,
            message: "missing %%MatrixMarket header".into(),
        });
    }
    if !h.contains("coordinate") {
        return Err(SparseError::Parse {
            line: 1,
            message: "only coordinate (sparse) format is supported".into(),
        });
    }
    let pattern = h.contains("pattern");
    let symmetry =
        if h.contains("symmetric") { MmSymmetry::Symmetric } else { MmSymmetry::General };

    // Skip comments, find the size line.
    let mut size_line = None;
    for (idx, line) in &mut lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((idx + 1, t.to_string()));
        break;
    }
    let (size_lineno, size_line) = size_line
        .ok_or_else(|| SparseError::Parse { line: 0, message: "missing size line".into() })?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>().map_err(|_| SparseError::Parse {
                line: size_lineno,
                message: format!("bad size token {t:?}"),
            })
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: size_lineno,
            message: "size line must be `rows cols nnz`".into(),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(
        nrows,
        ncols,
        if symmetry == MmSymmetry::Symmetric { 2 * nnz } else { nnz },
    );
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut toks = t.split_whitespace();
        let lineno = idx + 1;
        let parse_idx = |tok: Option<&str>| -> Result<usize, SparseError> {
            tok.ok_or_else(|| SparseError::Parse {
                line: lineno,
                message: "missing index token".into(),
            })?
            .parse::<usize>()
            .map_err(|_| SparseError::Parse { line: lineno, message: "bad index token".into() })
        };
        let r1 = parse_idx(toks.next())?;
        let c1 = parse_idx(toks.next())?;
        if r1 == 0 || c1 == 0 || r1 > nrows || c1 > ncols {
            return Err(SparseError::Parse {
                line: lineno,
                message: format!("index ({r1}, {c1}) outside 1..={nrows} x 1..={ncols}"),
            });
        }
        let v = if pattern {
            1.0
        } else {
            toks.next()
                .ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    message: "missing value token".into(),
                })?
                .parse::<f32>()
                .map_err(|_| SparseError::Parse {
                    line: lineno,
                    message: "bad value token".into(),
                })?
        };
        let (r, c) = (r1 - 1, c1 - 1);
        coo.push(r, c, v);
        if symmetry == MmSymmetry::Symmetric && r != c {
            coo.push(c, r, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: 0,
            message: format!("header declared {nnz} entries, found {seen}"),
        });
    }
    Ok(coo)
}

/// Read a Matrix Market file from disk and compress to CSR.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<Csr, SparseError> {
    let f = std::fs::File::open(path)?;
    Ok(read_matrix_market(f)?.to_csr(Dedup::Sum))
}

/// Write a CSR matrix in Matrix Market `general real` coordinate format.
pub fn write_matrix_market<W: Write>(w: &mut W, m: &Csr) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Parse a whitespace-separated edge list (`u v [weight]` per line,
/// 0-based, `#`/`%` comments). Vertex count is `max id + 1` unless a
/// larger `min_vertices` is given.
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> Result<Coo, SparseError> {
    let mut edges: Vec<(usize, usize, f32)> = Vec::new();
    let mut max_id = 0usize;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut toks = t.split_whitespace();
        let lineno = idx + 1;
        let u: usize = toks
            .next()
            .unwrap()
            .parse()
            .map_err(|_| SparseError::Parse { line: lineno, message: "bad source id".into() })?;
        let v: usize = toks
            .next()
            .ok_or_else(|| SparseError::Parse {
                line: lineno,
                message: "missing target id".into(),
            })?
            .parse()
            .map_err(|_| SparseError::Parse { line: lineno, message: "bad target id".into() })?;
        let w: f32 = match toks.next() {
            Some(t) => t
                .parse()
                .map_err(|_| SparseError::Parse { line: lineno, message: "bad weight".into() })?,
            None => 1.0,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = min_vertices.max(if edges.is_empty() { 0 } else { max_id + 1 });
    Coo::from_entries(n, n, edges)
}

/// Write an edge list (`u v weight` per line, 0-based).
pub fn write_edge_list<W: Write>(w: &mut W, m: &Csr) -> Result<(), SparseError> {
    for (r, c, v) in m.iter() {
        writeln!(w, "{r} {c} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_market_round_trip() {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 1.5);
        c.push(2, 0, -2.0);
        let m = c.to_csr(Dedup::Sum);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap().to_csr(Dedup::Sum);
        assert_eq!(back, m);
    }

    #[test]
    fn symmetric_mirror_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        let m = coo.to_csr(Dedup::Sum);
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(0, 1), Some(5.0));
        // diagonal not duplicated
        assert_eq!(m.get(2, 2), Some(1.0));
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn pattern_entries_get_unit_value() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let m = read_matrix_market(text.as_bytes()).unwrap().to_csr(Dedup::Sum);
        assert_eq!(m.get(0, 1), Some(1.0));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% another\n1 1 3.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap().to_csr(Dedup::Sum);
        assert_eq!(m.get(0, 0), Some(3.0));
    }

    #[test]
    fn header_mismatch_is_error() {
        let text = "not a header\n2 2 1\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn wrong_count_is_error() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn out_of_range_index_is_error() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_round_trip() {
        let mut c = Coo::new(4, 4);
        c.push(0, 3, 1.0);
        c.push(2, 1, 0.5);
        let m = c.to_csr(Dedup::Sum);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &m).unwrap();
        let back = read_edge_list(&buf[..], 4).unwrap().to_csr(Dedup::Sum);
        assert_eq!(back, m);
    }

    #[test]
    fn edge_list_default_weight_and_comments() {
        let text = "# comment\n0 1\n1 2 2.5\n";
        let m = read_edge_list(text.as_bytes(), 0).unwrap().to_csr(Dedup::Sum);
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 2), Some(2.5));
        assert_eq!(m.nrows(), 3);
    }

    #[test]
    fn min_vertices_pads_shape() {
        let text = "0 1\n";
        let coo = read_edge_list(text.as_bytes(), 10).unwrap();
        assert_eq!(coo.nrows(), 10);
    }
}
