//! Minibatch extraction: row slices of the adjacency matrix.
//!
//! The paper's problem setting (§II) considers a rectangular `m × n`
//! slice of the full adjacency matrix: a minibatch of `m` target
//! vertices with edges to all `n` vertices. `X` then holds the features
//! of the minibatch vertices and `Y` the features of all vertices.
//! FusedMM itself "does not perform minibatching, which is done at the
//! application layer" — this module is that application layer helper.

use crate::csr::Csr;
use crate::dense::Dense;

/// A minibatch view: the sliced adjacency plus the rows of `X` matching
/// the selected vertices.
#[derive(Debug, Clone)]
pub struct Minibatch {
    /// Global vertex ids of the minibatch rows, in slice order.
    pub vertices: Vec<usize>,
    /// The `batch × n` sliced adjacency matrix.
    pub adj: Csr,
}

/// Extract the rows `vertices` of `a` as a rectangular `|vertices| × n`
/// CSR slice. Column indices remain global, exactly as in Fig. 2 of the
/// paper (the slice keeps edges to *all* vertices).
pub fn slice_rows(a: &Csr, vertices: &[usize]) -> Minibatch {
    let mut rowptr = Vec::with_capacity(vertices.len() + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for &u in vertices {
        assert!(u < a.nrows(), "minibatch vertex {u} out of range for {} rows", a.nrows());
        let (cols, vals) = a.row(u);
        colidx.extend_from_slice(cols);
        values.extend_from_slice(vals);
        rowptr.push(colidx.len());
    }
    let adj = Csr::from_parts(vertices.len(), a.ncols(), rowptr, colidx, values)
        .expect("row slice of a valid CSR is valid");
    Minibatch { vertices: vertices.to_vec(), adj }
}

/// Gather the rows `vertices` of the full feature matrix into a compact
/// `|vertices| × d` matrix (the minibatch `X`).
pub fn gather_rows(features: &Dense, vertices: &[usize]) -> Dense {
    let d = features.ncols();
    let mut out = Dense::zeros(vertices.len(), d);
    for (i, &u) in vertices.iter().enumerate() {
        out.row_mut(i).copy_from_slice(features.row(u));
    }
    out
}

/// Scatter-add compact minibatch rows back into the full matrix:
/// `full[vertices[i], :] += batch[i, :]`. Used to apply minibatch
/// gradients.
pub fn scatter_add_rows(full: &mut Dense, vertices: &[usize], batch: &Dense) {
    assert_eq!(batch.nrows(), vertices.len());
    assert_eq!(batch.ncols(), full.ncols());
    for (i, &u) in vertices.iter().enumerate() {
        let src = batch.row(i);
        for (dst, &s) in full.row_mut(u).iter_mut().zip(src) {
            *dst += s;
        }
    }
}

/// Partition `0..n` into consecutive batches of size `batch_size` (the
/// last batch may be smaller). Matches the paper's minibatched training
/// loop (batch size 256 in Table VIII).
pub fn batches(n: usize, batch_size: usize) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    (0..n).step_by(batch_size).map(|start| (start..(start + batch_size).min(n)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::{Coo, Dedup};

    fn graph() -> Csr {
        let mut c = Coo::new(4, 4);
        c.push(0, 1, 1.0);
        c.push(0, 2, 2.0);
        c.push(1, 3, 3.0);
        c.push(2, 0, 4.0);
        c.push(3, 3, 5.0);
        c.to_csr(Dedup::Sum)
    }

    #[test]
    fn slice_preserves_rows_and_global_columns() {
        let a = graph();
        let mb = slice_rows(&a, &[2, 0]);
        assert_eq!(mb.adj.nrows(), 2);
        assert_eq!(mb.adj.ncols(), 4);
        // first slice row is vertex 2
        assert_eq!(mb.adj.row(0).0, &[0]);
        assert_eq!(mb.adj.row(0).1, &[4.0]);
        // second slice row is vertex 0
        assert_eq!(mb.adj.row(1).0, &[1, 2]);
    }

    #[test]
    fn slice_of_all_rows_is_identity() {
        let a = graph();
        let mb = slice_rows(&a, &[0, 1, 2, 3]);
        assert_eq!(mb.adj, a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rejects_bad_vertex() {
        let a = graph();
        let _ = slice_rows(&a, &[9]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let full = Dense::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let batch = gather_rows(&full, &[3, 1]);
        assert_eq!(batch.row(0), full.row(3));
        assert_eq!(batch.row(1), full.row(1));

        let mut acc = Dense::zeros(4, 3);
        scatter_add_rows(&mut acc, &[3, 1], &batch);
        assert_eq!(acc.row(3), full.row(3));
        assert_eq!(acc.row(1), full.row(1));
        assert!(acc.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scatter_add_accumulates() {
        let mut acc = Dense::zeros(2, 2);
        let b = Dense::filled(1, 2, 1.5);
        scatter_add_rows(&mut acc, &[1], &b);
        scatter_add_rows(&mut acc, &[1], &b);
        assert_eq!(acc.row(1), &[3.0, 3.0]);
    }

    #[test]
    fn batches_cover_everything_once() {
        let bs = batches(10, 3);
        assert_eq!(bs.len(), 4);
        assert_eq!(bs[3], vec![9]);
        let all: Vec<usize> = bs.into_iter().flatten().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batches_exact_division() {
        let bs = batches(6, 3);
        assert_eq!(bs.len(), 2);
        assert!(bs.iter().all(|b| b.len() == 3));
    }
}
