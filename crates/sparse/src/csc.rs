//! Compressed Sparse Column matrices.
//!
//! CSC gives O(1) access to the in-edges of a column. The FusedMM kernel
//! itself is row-driven, but building minibatch slices and the
//! inspector–executor SpMM baseline both want column-side views.

use crate::csr::Csr;

/// An `m × n` sparse matrix in CSC form with `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f32>,
}

impl Csc {
    /// Column-compress a CSR matrix (a stable counting sort over columns).
    pub fn from_csr(csr: &Csr) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nnz = csr.nnz();
        let mut colptr = vec![0usize; ncols + 1];
        for &c in csr.colidx() {
            colptr[c + 1] += 1;
        }
        for i in 0..ncols {
            colptr[i + 1] += colptr[i];
        }
        let mut cursor = colptr.clone();
        let mut rowidx = vec![0usize; nnz];
        let mut values = vec![0f32; nnz];
        for (r, c, v) in csr.iter() {
            let slot = cursor[c];
            rowidx[slot] = r;
            values[slot] = v;
            cursor[c] += 1;
        }
        Csc { nrows, ncols, colptr, rowidx, values }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// The column pointer array.
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// The `(row, value)` pairs of column `c`.
    pub fn col(&self, c: usize) -> (&[usize], &[f32]) {
        let lo = self.colptr[c];
        let hi = self.colptr[c + 1];
        (&self.rowidx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in column `c` (its in-degree).
    pub fn col_nnz(&self, c: usize) -> usize {
        self.colptr[c + 1] - self.colptr[c]
    }

    /// Convert back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut rowptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowidx {
            rowptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            rowptr[i + 1] += rowptr[i];
        }
        let mut cursor = rowptr.clone();
        let mut colidx = vec![0usize; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for c in 0..self.ncols {
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                let slot = cursor[r];
                colidx[slot] = c;
                values[slot] = v;
                cursor[r] += 1;
            }
        }
        Csr::from_parts(self.nrows, self.ncols, rowptr, colidx, values)
            .expect("CSC->CSR conversion produced invalid structure")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_parts(3, 3, vec![0, 2, 2, 4], vec![0, 2, 0, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn column_access() {
        let csc = Csc::from_csr(&small());
        let (rows, vals) = csc.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
        assert_eq!(csc.col_nnz(1), 1);
        assert_eq!(csc.col_nnz(2), 1);
    }

    #[test]
    fn csr_round_trip() {
        let m = small();
        assert_eq!(m.to_csc().to_csr(), m);
    }

    #[test]
    fn shape_and_nnz_preserved() {
        let csc = Csc::from_csr(&small());
        assert_eq!((csc.nrows(), csc.ncols(), csc.nnz()), (3, 3, 4));
    }

    #[test]
    fn rows_sorted_within_column() {
        // from_csr iterates rows in order, so rowidx per column is sorted.
        let csc = Csc::from_csr(&small());
        for c in 0..csc.ncols() {
            let (rows, _) = csc.col(c);
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
