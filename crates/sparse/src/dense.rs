//! Row-major dense matrices over cache-aligned storage.
//!
//! `X` (m × d), `Y` (n × d) and `Z` (m × d) in the paper are dense
//! feature matrices whose rows are the per-vertex feature vectors. Rows
//! are contiguous so a kernel loads `x_u = X[u, :]` as one streaming
//! slice.

use crate::aligned::AlignedVec;
use crate::error::SparseError;

/// A dense `rows × cols` matrix of `f32`, row-major, 64-byte aligned.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    nrows: usize,
    ncols: usize,
    data: AlignedVec,
}

impl Dense {
    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense { nrows, ncols, data: AlignedVec::zeroed(nrows * ncols) }
    }

    /// Matrix filled with a constant.
    pub fn filled(nrows: usize, ncols: usize, v: f32) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        m.data.as_mut_slice().fill(v);
        m
    }

    /// Build from a row-major slice.
    pub fn from_rows(nrows: usize, ncols: usize, data: &[f32]) -> Result<Self, SparseError> {
        if data.len() != nrows * ncols {
            return Err(SparseError::ShapeMismatch {
                expected: format!("{} values for a {}x{} matrix", nrows * ncols, nrows, ncols),
                found: format!("{} values", data.len()),
            });
        }
        Ok(Dense { nrows, ncols, data: AlignedVec::from_slice(data) })
    }

    /// Build by calling `f(row, col)` for each element.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for r in 0..nrows {
            for c in 0..ncols {
                m.data[r * ncols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (the embedding dimension `d` for feature
    /// matrices).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `r` as a slice of length `ncols`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.nrows);
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.nrows);
        let c = self.ncols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Single element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.ncols + c]
    }

    /// Set a single element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.ncols + c] = v;
    }

    /// The full backing slice, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Split into disjoint mutable row bands `[0, split)` and
    /// `[split, nrows)` — this is how 1D-partitioned threads get
    /// non-overlapping writable views of `Z`.
    pub fn split_rows_mut(&mut self, split: usize) -> (&mut [f32], &mut [f32]) {
        self.data.as_mut_slice().split_at_mut(split * self.ncols)
    }

    /// Reset all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill_zero();
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// Max absolute elementwise difference against another matrix of the
    /// same shape. Used pervasively by the fused-vs-unfused tests.
    pub fn max_abs_diff(&self, other: &Dense) -> f32 {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "max_abs_diff requires identical shapes"
        );
        self.data.iter().zip(other.data.iter()).map(|(&a, &b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Max relative elementwise difference `|a-b| / max(1, |a|, |b|)`.
    pub fn max_rel_diff(&self, other: &Dense) -> f32 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs() / 1f32.max(a.abs()).max(b.abs()))
            .fold(0.0f32, f32::max)
    }

    /// Row-major matrix product `self (r×k) × other (k×c) -> (r×c)`.
    /// A straightforward i-k-j triple loop; used by the dense baselines
    /// and the GCN weight multiply, not by the sparse kernels.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.ncols, other.nrows, "matmul inner dimensions must agree");
        let mut out = Dense::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Bytes of storage (4 bytes per single-precision element).
    pub fn storage_bytes(&self) -> usize {
        4 * self.nrows * self.ncols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Dense::zeros(3, 5);
        assert_eq!((m.nrows(), m.ncols()), (3, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_validates_length() {
        assert!(Dense::from_rows(2, 2, &[1.0, 2.0, 3.0]).is_err());
        assert!(Dense::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn row_access_is_contiguous() {
        let m = Dense::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn from_fn_indexes_correctly() {
        let m = Dense::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn split_rows_mut_is_disjoint() {
        let mut m = Dense::zeros(4, 2);
        let (top, bottom) = m.split_rows_mut(1);
        assert_eq!(top.len(), 2);
        assert_eq!(bottom.len(), 6);
        top[0] = 1.0;
        bottom[5] = 2.0;
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(3, 1), 2.0);
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = Dense::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Dense::from_rows(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn diff_metrics() {
        let a = Dense::from_rows(1, 2, &[1.0, 2.0]).unwrap();
        let b = Dense::from_rows(1, 2, &[1.5, 2.0]).unwrap();
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
        assert!(a.max_rel_diff(&a) == 0.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Dense::from_rows(1, 2, &[3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rows_are_cache_aligned_when_d_multiple_of_16() {
        let m = Dense::zeros(8, 16);
        for r in 0..8 {
            assert_eq!(m.row(r).as_ptr() as usize % 64, 0);
        }
    }
}
