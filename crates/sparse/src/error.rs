//! Error type shared across the sparse substrate.

use std::fmt;

/// Errors produced while constructing or converting matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index is outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared number of rows.
        nrows: usize,
        /// Declared number of columns.
        ncols: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected relationship.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A CSR/CSC structure invariant is violated (row pointers not
    /// monotone, lengths inconsistent, ...).
    InvalidStructure(String),
    /// A file could not be parsed.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying IO failure, flattened to a string so the error stays `Clone`.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix")
            }
            SparseError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SparseError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 7, nrows: 3, ncols: 4 };
        let s = e.to_string();
        assert!(s.contains("(5, 7)"));
        assert!(s.contains("3x4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
