//! Operator bundles and the application presets of Table III.

use std::sync::Arc;

use crate::kinds::{AOp, MOp, ROp, SOp, VOp};
use crate::mlp::Mlp;
use crate::sigmoid::SigmoidLut;

/// Which well-known computational pattern an [`OpSet`] corresponds to.
///
/// The optimized library (paper §IV) "recognizes a pattern from
/// predefined VOP, ROP, SOP, MOP, and AOP operations" and dispatches to
/// a specialized kernel. This enum is that recognition result; kernels
/// without a specialization run through the generic five-step path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `(MUL, RSUM, SIGMOID, MUL, ASUM)` — sigmoid graph embedding
    /// (VERSE, Force2Vec; Table III row 2).
    SigmoidEmbedding,
    /// `(SUB, NORM, SCAL, MUL, ASUM)` — Fruchterman–Reingold force
    /// model (Table III row 1).
    FrModel,
    /// `(SUB, NORM, TDIST, MUL, ASUM)` — t-distribution graph
    /// embedding, the second similarity measure of Force2Vec.
    TDistEmbedding,
    /// `(SEL2ND, NOOP, NOOP, MUL, ASUM)` — graph convolution; the pure
    /// SpMM specialization (Table III row 3).
    Gcn,
    /// `(MLP, NOOP, SIGMOID, MUL, AMAX)` — GNN with MLP messages
    /// (Table III row 4).
    GnnMlp,
    /// Anything else: handled by the generic kernel only.
    Custom,
}

impl Pattern {
    /// Short name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::SigmoidEmbedding => "embedding",
            Pattern::FrModel => "fr",
            Pattern::TDistEmbedding => "tdist",
            Pattern::Gcn => "gcn",
            Pattern::GnnMlp => "gnn-mlp",
            Pattern::Custom => "custom",
        }
    }
}

/// One operation per FusedMM step, plus the recognized [`Pattern`].
///
/// Construct presets with the associated functions, or assemble any
/// combination by hand (pattern [`Pattern::Custom`]).
#[derive(Debug, Clone)]
pub struct OpSet {
    /// Step 1: elementwise binary op.
    pub vop: VOp,
    /// Step 2: reduction (or NOOP).
    pub rop: ROp,
    /// Step 3: scaling (or NOOP).
    pub sop: SOp,
    /// Step 4: message × neighbor feature.
    pub mop: MOp,
    /// Step 5: accumulation.
    pub aop: AOp,
    /// The recognized pattern; drives specialized-kernel dispatch.
    pub pattern: Pattern,
}

impl OpSet {
    /// Assemble a custom operator set (no specialized kernel).
    pub fn custom(vop: VOp, rop: ROp, sop: SOp, mop: MOp, aop: AOp) -> Self {
        OpSet { vop, rop, sop, mop, aop, pattern: Pattern::Custom }
    }

    /// Table III row 2 — sigmoid graph embedding:
    /// `h_uv = σ(x_uᵀ y_v)`, `z_u = Σ_v h_uv · y_v`.
    ///
    /// `lut` selects the table-lookup sigmoid the optimized kernels use;
    /// `None` gives the exact sigmoid.
    pub fn sigmoid_embedding(lut: Option<Arc<SigmoidLut>>) -> Self {
        let sop = match lut {
            Some(t) => SOp::SigmoidLut(t),
            None => SOp::Sigmoid,
        };
        OpSet {
            vop: VOp::Mul,
            rop: ROp::Sum,
            sop,
            mop: MOp::Mul,
            aop: AOp::Sum,
            pattern: Pattern::SigmoidEmbedding,
        }
    }

    /// Table III row 1 — Fruchterman–Reingold force model:
    /// `h_uv = α·‖x_u − y_v‖`, `z_u = Σ_v h_uv · y_v`.
    ///
    /// `alpha` is the SCAL constant (the FR step length / spring
    /// constant the application chooses).
    pub fn fr_model(alpha: f32) -> Self {
        OpSet {
            vop: VOp::Sub,
            rop: ROp::Norm,
            sop: SOp::Scale(alpha),
            mop: MOp::Mul,
            aop: AOp::Sum,
            pattern: Pattern::FrModel,
        }
    }

    /// The t-distribution embedding pattern used by Force2Vec's tdist
    /// mode: `h_uv = 1 / (1 + ‖x_u − y_v‖²)`, `z_u = Σ_v h_uv · y_v`.
    pub fn tdist_embedding() -> Self {
        OpSet {
            vop: VOp::Sub,
            rop: ROp::Norm,
            sop: SOp::TDist,
            mop: MOp::Mul,
            aop: AOp::Sum,
            pattern: Pattern::TDistEmbedding,
        }
    }

    /// Table III row 3 — GCN aggregation:
    /// `z_u = Σ_v a_uv · y_v` (pure SpMM; message is the neighbor
    /// feature, multiplied by the edge weight in MOP).
    pub fn gcn() -> Self {
        OpSet {
            vop: VOp::Sel2nd,
            rop: ROp::Noop,
            sop: SOp::Noop,
            mop: MOp::Mul,
            aop: AOp::Sum,
            pattern: Pattern::Gcn,
        }
    }

    /// Table III row 4 — GNN with MLP messages and max pooling:
    /// `h_uv = σ(MLP([x_u; y_v]))`, `z_u = max_v a_uv·h_uv`.
    pub fn gnn_mlp(mlp: Arc<Mlp>) -> Self {
        OpSet {
            vop: VOp::Mlp(mlp),
            rop: ROp::Noop,
            sop: SOp::Sigmoid,
            mop: MOp::Mul,
            aop: AOp::Max,
            pattern: Pattern::GnnMlp,
        }
    }

    /// Dimensionality of the stored per-edge message an *unfused*
    /// pipeline needs for this operator set: 1 for reduced (scalar)
    /// messages, `d` when ROP is a NOOP. This drives the memory model
    /// of Fig. 10(b).
    pub fn message_dim(&self, d: usize) -> usize {
        if self.rop.is_noop() {
            d
        } else {
            1
        }
    }

    /// Dimensionality of the *SDDMM intermediate* an unfused pipeline
    /// materializes before edgewise post-processing. The VOP output is
    /// always a `d`-vector unless the whole SDDMM phase collapses to a
    /// scalar dot product (the embedding pattern, which DGL computes
    /// with its fused `u_dot_v` SDDMM). GCN skips SDDMM entirely.
    pub fn sddmm_intermediate_dim(&self, d: usize) -> usize {
        match self.pattern {
            Pattern::SigmoidEmbedding => 1,
            Pattern::Gcn => 0,
            _ => d,
        }
    }

    /// True when this operator set has a pattern-specialized kernel in
    /// the optimized library (the first three Table III rows plus the
    /// t-distribution extension).
    pub fn is_specializable(&self) -> bool {
        matches!(
            self.pattern,
            Pattern::SigmoidEmbedding | Pattern::FrModel | Pattern::TDistEmbedding | Pattern::Gcn
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::Message;

    #[test]
    fn embedding_preset_matches_table_iii() {
        let ops = OpSet::sigmoid_embedding(None);
        assert_eq!(format!("{:?}", ops.vop), "MUL");
        assert_eq!(format!("{:?}", ops.rop), "RSUM");
        assert_eq!(format!("{:?}", ops.sop), "SIGMOID");
        assert_eq!(format!("{:?}", ops.mop), "MUL");
        assert_eq!(format!("{:?}", ops.aop), "ASUM");
        assert_eq!(ops.pattern, Pattern::SigmoidEmbedding);
    }

    #[test]
    fn fr_preset_matches_table_iii() {
        let ops = OpSet::fr_model(0.5);
        assert_eq!(format!("{:?}", ops.rop), "NORM");
        assert_eq!(format!("{:?}", ops.sop), "SCAL");
        assert_eq!(ops.pattern, Pattern::FrModel);
    }

    #[test]
    fn tdist_preset_shape() {
        let ops = OpSet::tdist_embedding();
        assert_eq!(format!("{:?}", ops.sop), "TDIST");
        assert_eq!(ops.pattern, Pattern::TDistEmbedding);
        assert!(ops.is_specializable());
    }

    #[test]
    fn specializable_flags() {
        assert!(OpSet::sigmoid_embedding(None).is_specializable());
        assert!(OpSet::gcn().is_specializable());
        assert!(!OpSet::gnn_mlp(Arc::new(Mlp::seeded(4, 4, 4, 1))).is_specializable());
        assert!(
            !OpSet::custom(VOp::Add, ROp::Sum, SOp::Noop, MOp::Mul, AOp::Sum).is_specializable()
        );
    }

    #[test]
    fn gcn_preset_is_pure_spmm() {
        let ops = OpSet::gcn();
        assert_eq!(format!("{:?}", ops.vop), "SEL2ND");
        assert!(ops.rop.is_noop());
        assert!(ops.sop.is_noop());
        assert_eq!(ops.pattern, Pattern::Gcn);
    }

    #[test]
    fn gnn_mlp_preset_uses_amax() {
        let ops = OpSet::gnn_mlp(Arc::new(Mlp::seeded(4, 4, 4, 1)));
        assert_eq!(format!("{:?}", ops.aop), "AMAX");
        assert_eq!(ops.pattern, Pattern::GnnMlp);
    }

    #[test]
    fn message_dims_follow_rop() {
        assert_eq!(OpSet::sigmoid_embedding(None).message_dim(128), 1);
        assert_eq!(OpSet::fr_model(1.0).message_dim(128), 1);
        assert_eq!(OpSet::gcn().message_dim(128), 128);
    }

    #[test]
    fn sddmm_intermediate_dims_match_dgl_behaviour() {
        // embedding: DGL's fused dot SDDMM -> scalar intermediate
        assert_eq!(OpSet::sigmoid_embedding(None).sddmm_intermediate_dim(128), 1);
        // FR: elementwise SDDMM -> d-dim intermediate (the OOM culprit)
        assert_eq!(OpSet::fr_model(1.0).sddmm_intermediate_dim(128), 128);
        // GCN: no SDDMM at all
        assert_eq!(OpSet::gcn().sddmm_intermediate_dim(128), 0);
    }

    #[test]
    fn embedding_end_to_end_one_edge() {
        // Manually run the five steps on one edge and check h = σ(x·y).
        let ops = OpSet::sigmoid_embedding(None);
        let x = [1.0, 2.0];
        let y = [0.5, 0.25];
        let mut z = [0.0; 2];
        ops.vop.apply(&x, &y, 1.0, &mut z);
        let s = ops.rop.apply(&z).unwrap();
        assert!((s - 1.0).abs() < 1e-6);
        let h = ops.sop.apply_scalar(s, 1.0);
        assert!((h - crate::sigmoid(1.0)).abs() < 1e-6);
        let mut w = [0.0; 2];
        ops.mop.apply(Message::Scalar(h), &y, 1.0, &mut w);
        let mut acc = [0.0; 2];
        ops.aop.apply(&mut acc, &w);
        assert!((acc[0] - h * 0.5).abs() < 1e-6);
    }

    #[test]
    fn pattern_names() {
        assert_eq!(Pattern::SigmoidEmbedding.name(), "embedding");
        assert_eq!(Pattern::Gcn.name(), "gcn");
    }
}
