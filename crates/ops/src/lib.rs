//! The five-step user-defined operator framework of FusedMM.
//!
//! FusedMM (§III of the paper) splits the fused message generation +
//! aggregation `z_u = ⊕_{v∈N(u)} φ(x_u, y_v, ψ(x_u, y_v, a_uv))` into
//! five steps, each replaceable by the application:
//!
//! 1. **VOP** — elementwise binary op on the two feature vectors:
//!    `z = x ⊙ y`;
//! 2. **ROP** — optional reduction of that vector to a scalar:
//!    `s = ⊕_i z_i`;
//! 3. **SOP** — scaling / nonlinearity on the scalar (or on the vector
//!    when ROP is a NOOP): `h = σ(s)`;
//! 4. **MOP** — "multiply" the message with the neighbor feature:
//!    `w = h ⊙ y`;
//! 5. **AOP** — accumulate into the output row: `z_u = z_u ⊕ w`.
//!
//! Steps are expressed as enums covering every standard operation of the
//! paper's Table II (ADD, MUL, SEL2ND, SIGMOID, SCAL, RSUM, RMUL, NORM,
//! ASUM, AMAX, NOOP) plus `Custom` variants taking arbitrary closures —
//! the Rust analogue of the C library's function pointers. [`OpSet`]
//! bundles one choice per step, and [`OpSet::sigmoid_embedding`],
//! [`OpSet::fr_model`], [`OpSet::gcn`] and [`OpSet::gnn_mlp`] are the
//! four application presets of Table III.

pub mod kinds;
pub mod mlp;
pub mod opset;
pub mod sigmoid;

pub use kinds::{AOp, MOp, Message, ROp, SOp, VOp};
pub use mlp::Mlp;
pub use opset::{OpSet, Pattern};
pub use sigmoid::{sigmoid, SigmoidLut};
