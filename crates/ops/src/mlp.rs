//! A small multilayer perceptron used as a user-defined VOP.
//!
//! Table III row 4 of the paper instantiates FusedMM for a "Graph Neural
//! Network with MLP": the message on edge `(u, v)` is `MLP([x_u; y_v])`,
//! followed by SIGMOID (SOP), MUL (MOP) and AMAX (AOP). The MLP is a
//! user-provided function; this module ships a deterministic two-layer
//! perceptron (`ReLU` hidden layer, linear output) so the pattern can be
//! exercised and benchmarked without an external ML framework.

/// A dense two-layer MLP mapping the concatenated edge endpoints
/// `[x_u; y_v] ∈ R^{2d}` to a `d_out`-dimensional message.
///
/// Weights are stored row-major. `forward` is allocation-free except
/// for a per-call hidden buffer kept small (the kernel reuses one `Mlp`
/// across all edges; the hidden activation is written into a stack-local
/// scratch provided by the caller via `forward_with_scratch` in hot
/// paths).
#[derive(Debug, Clone)]
pub struct Mlp {
    d_in: usize,
    d_hidden: usize,
    d_out: usize,
    /// `d_hidden × (2·d_in)` first-layer weights, row-major.
    w1: Vec<f32>,
    /// `d_hidden` first-layer biases.
    b1: Vec<f32>,
    /// `d_out × d_hidden` second-layer weights, row-major.
    w2: Vec<f32>,
    /// `d_out` second-layer biases.
    b2: Vec<f32>,
}

impl Mlp {
    /// Build from explicit weights.
    ///
    /// # Panics
    /// Panics if any weight/bias length disagrees with the declared
    /// dimensions.
    pub fn from_weights(
        d_in: usize,
        d_hidden: usize,
        d_out: usize,
        w1: Vec<f32>,
        b1: Vec<f32>,
        w2: Vec<f32>,
        b2: Vec<f32>,
    ) -> Self {
        assert_eq!(w1.len(), d_hidden * 2 * d_in, "w1 must be d_hidden x 2*d_in");
        assert_eq!(b1.len(), d_hidden, "b1 must be d_hidden");
        assert_eq!(w2.len(), d_out * d_hidden, "w2 must be d_out x d_hidden");
        assert_eq!(b2.len(), d_out, "b2 must be d_out");
        Mlp { d_in, d_hidden, d_out, w1, b1, w2, b2 }
    }

    /// Deterministic pseudo-random initialization (a fixed linear
    /// congruential sequence scaled to `±1/√fan_in`), so tests and
    /// benchmarks are reproducible without a RNG dependency.
    pub fn seeded(d_in: usize, d_hidden: usize, d_out: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // map to [-1, 1)
            (state >> 11) as f32 / (1u64 << 52) as f32 * 2.0 - 1.0
        };
        let s1 = 1.0 / ((2 * d_in) as f32).sqrt();
        let s2 = 1.0 / (d_hidden as f32).sqrt();
        let w1 = (0..d_hidden * 2 * d_in).map(|_| next() * s1).collect();
        let b1 = (0..d_hidden).map(|_| next() * s1).collect();
        let w2 = (0..d_out * d_hidden).map(|_| next() * s2).collect();
        let b2 = (0..d_out).map(|_| next() * s2).collect();
        Mlp::from_weights(d_in, d_hidden, d_out, w1, b1, w2, b2)
    }

    /// Input feature dimension `d` (each endpoint contributes `d`).
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Hidden layer width.
    pub fn d_hidden(&self) -> usize {
        self.d_hidden
    }

    /// Output message dimension.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// `out = W2·relu(W1·[x; y] + b1) + b2`.
    ///
    /// # Panics
    /// Panics if `x.len() != d_in`, `y.len() != d_in`, or
    /// `out.len() != d_out`.
    pub fn forward(&self, x: &[f32], y: &[f32], out: &mut [f32]) {
        let mut hidden = vec![0f32; self.d_hidden];
        self.forward_with_scratch(x, y, out, &mut hidden);
    }

    /// Allocation-free forward pass with caller-provided hidden scratch
    /// of length `d_hidden`.
    pub fn forward_with_scratch(&self, x: &[f32], y: &[f32], out: &mut [f32], hidden: &mut [f32]) {
        assert_eq!(x.len(), self.d_in, "x has wrong length");
        assert_eq!(y.len(), self.d_in, "y has wrong length");
        assert_eq!(out.len(), self.d_out, "out has wrong length");
        assert_eq!(hidden.len(), self.d_hidden, "hidden scratch has wrong length");
        let two_d = 2 * self.d_in;
        for (j, h) in hidden.iter_mut().enumerate() {
            let row = &self.w1[j * two_d..(j + 1) * two_d];
            let (rx, ry) = row.split_at(self.d_in);
            let mut acc = self.b1[j];
            for (&w, &v) in rx.iter().zip(x) {
                acc += w * v;
            }
            for (&w, &v) in ry.iter().zip(y) {
                acc += w * v;
            }
            *h = acc.max(0.0); // ReLU
        }
        for (k, o) in out.iter_mut().enumerate() {
            let row = &self.w2[k * self.d_hidden..(k + 1) * self.d_hidden];
            let mut acc = self.b2[k];
            for (&w, &h) in row.iter().zip(hidden.iter()) {
                acc += w * h;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_like_mlp() {
        // d_in=2, hidden=2, out=2; W1 selects x (first half), W2 = I.
        let w1 = vec![
            1.0, 0.0, 0.0, 0.0, // h0 = x0
            0.0, 1.0, 0.0, 0.0, // h1 = x1
        ];
        let mlp =
            Mlp::from_weights(2, 2, 2, w1, vec![0.0; 2], vec![1.0, 0.0, 0.0, 1.0], vec![0.0; 2]);
        let mut out = [0.0; 2];
        mlp.forward(&[3.0, 4.0], &[7.0, 8.0], &mut out);
        assert_eq!(out, [3.0, 4.0]);
    }

    #[test]
    fn relu_clamps_hidden() {
        // h0 = -x0 -> relu -> 0 for positive x0
        let mlp = Mlp::from_weights(1, 1, 1, vec![-1.0, 0.0], vec![0.0], vec![1.0], vec![0.5]);
        let mut out = [0.0; 1];
        mlp.forward(&[2.0], &[0.0], &mut out);
        assert_eq!(out, [0.5]); // hidden clamped to 0, only bias remains
        mlp.forward(&[-2.0], &[0.0], &mut out);
        assert_eq!(out, [2.5]);
    }

    #[test]
    fn y_half_of_concat_is_used() {
        // h0 = y0
        let mlp = Mlp::from_weights(1, 1, 1, vec![0.0, 1.0], vec![0.0], vec![1.0], vec![0.0]);
        let mut out = [0.0; 1];
        mlp.forward(&[100.0], &[4.0], &mut out);
        assert_eq!(out, [4.0]);
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = Mlp::seeded(4, 8, 4, 42);
        let b = Mlp::seeded(4, 8, 4, 42);
        let c = Mlp::seeded(4, 8, 4, 43);
        let mut oa = [0.0; 4];
        let mut ob = [0.0; 4];
        let mut oc = [0.0; 4];
        let x = [0.1, 0.2, 0.3, 0.4];
        let y = [0.5, 0.6, 0.7, 0.8];
        a.forward(&x, &y, &mut oa);
        b.forward(&x, &y, &mut ob);
        c.forward(&x, &y, &mut oc);
        assert_eq!(oa, ob);
        assert_ne!(oa, oc);
    }

    #[test]
    fn scratch_and_alloc_paths_agree() {
        let mlp = Mlp::seeded(3, 5, 3, 7);
        let x = [1.0, -1.0, 0.5];
        let y = [0.2, 0.3, -0.7];
        let mut o1 = [0.0; 3];
        let mut o2 = [0.0; 3];
        let mut scratch = [0.0; 5];
        mlp.forward(&x, &y, &mut o1);
        mlp.forward_with_scratch(&x, &y, &mut o2, &mut scratch);
        assert_eq!(o1, o2);
    }

    #[test]
    #[should_panic(expected = "w1 must be")]
    fn bad_weight_shape_panics() {
        let _ = Mlp::from_weights(2, 2, 2, vec![0.0; 3], vec![0.0; 2], vec![0.0; 4], vec![0.0; 2]);
    }

    #[test]
    fn dimensions_exposed() {
        let mlp = Mlp::seeded(8, 16, 8, 1);
        assert_eq!((mlp.d_in(), mlp.d_hidden(), mlp.d_out()), (8, 16, 8));
    }
}
