//! The five operation kinds and their standard instances (paper Table II).
//!
//! Each kind is an enum whose variants are the standard operations the
//! reference library ships, plus a `Custom` closure variant mirroring
//! the C implementation's user function pointers. Application code picks
//! one variant per step; the kernel applies them per edge.

use std::fmt;
use std::sync::Arc;

use crate::mlp::Mlp;
use crate::sigmoid::{sigmoid, SigmoidLut};

/// The message produced by the SDDMM phase (VOP→ROP→SOP) for one edge.
///
/// When ROP reduces, the message is a scalar (graph embedding, FR
/// model); when ROP is a NOOP the message stays a `d`-vector (GCN,
/// GNN-with-MLP). The unfused baseline must *store* this per edge —
/// which is exactly the memory the fused kernel saves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message<'a> {
    /// A reduced scalar message.
    Scalar(f32),
    /// An unreduced vector message (borrowed from kernel scratch).
    Vector(&'a [f32]),
}

impl Message<'_> {
    /// The number of f32 values this message occupies when materialized.
    pub fn len(&self) -> usize {
        match self {
            Message::Scalar(_) => 1,
            Message::Vector(v) => v.len(),
        }
    }

    /// True for zero-length vector messages (scalars are never empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Type of user closures for custom VOPs: `f(x, y, a, out)`.
pub type VopFn = dyn Fn(&[f32], &[f32], f32, &mut [f32]) + Send + Sync;
/// Type of user closures for custom ROPs: `f(z) -> s`.
pub type RopFn = dyn Fn(&[f32]) -> f32 + Send + Sync;
/// Type of user closures for custom SOPs: `f(s, a) -> h` applied
/// per element.
pub type SopFn = dyn Fn(f32, f32) -> f32 + Send + Sync;
/// Type of user closures for custom MOPs: `f(h, y, a, out)`.
pub type MopFn = dyn Fn(Message<'_>, &[f32], f32, &mut [f32]) + Send + Sync;
/// Type of user closures for custom AOPs: `f(z_acc, w)`.
pub type AopFn = dyn Fn(&mut [f32], &[f32]) + Send + Sync;

/// Step 1 — VOP: elementwise binary operation on `x_u` and `y_v`
/// producing the intermediate vector `z` (paper: ADD, MUL, SEL2ND rows
/// of Table II; the GNN row needs a user MLP).
#[derive(Clone)]
pub enum VOp {
    /// `z_i = x_i + y_i` (Table II ADD).
    Add,
    /// `z_i = x_i - y_i` — the "addition" instance used by the FR layout
    /// model, whose messages depend on the displacement `x_u - x_v`.
    Sub,
    /// `z_i = x_i * y_i` (Table II MUL) — first half of the dot product.
    Mul,
    /// `z = x` (select first operand).
    Sel1st,
    /// `z = y` (Table II SEL2ND) — GCN selects the neighbor feature.
    Sel2nd,
    /// `z = MLP([x; y])` — the user-provided multilayer perceptron of
    /// the GNN pattern (Table III row 4).
    Mlp(Arc<Mlp>),
    /// Arbitrary user function `f(x, y, a_uv, out)`.
    Custom(Arc<VopFn>),
}

impl VOp {
    /// Apply to one edge: write the intermediate vector into `out`
    /// (length `d`).
    #[inline]
    pub fn apply(&self, x: &[f32], y: &[f32], a: f32, out: &mut [f32]) {
        match self {
            VOp::Add => {
                for ((o, &xi), &yi) in out.iter_mut().zip(x).zip(y) {
                    *o = xi + yi;
                }
            }
            VOp::Sub => {
                for ((o, &xi), &yi) in out.iter_mut().zip(x).zip(y) {
                    *o = xi - yi;
                }
            }
            VOp::Mul => {
                for ((o, &xi), &yi) in out.iter_mut().zip(x).zip(y) {
                    *o = xi * yi;
                }
            }
            VOp::Sel1st => out.copy_from_slice(x),
            VOp::Sel2nd => out.copy_from_slice(y),
            VOp::Mlp(mlp) => mlp.forward(x, y, out),
            VOp::Custom(f) => f(x, y, a, out),
        }
    }
}

impl fmt::Debug for VOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            VOp::Add => "ADD",
            VOp::Sub => "SUB",
            VOp::Mul => "MUL",
            VOp::Sel1st => "SEL1ST",
            VOp::Sel2nd => "SEL2ND",
            VOp::Mlp(_) => "MLP",
            VOp::Custom(_) => "CUSTOM",
        };
        f.write_str(name)
    }
}

/// Step 2 — ROP: reduce the intermediate vector to a scalar, or skip
/// reduction entirely with [`ROp::Noop`] (GCN, GNN-MLP keep the vector).
#[derive(Clone)]
pub enum ROp {
    /// `s = Σ_i z_i` (Table II RSUM) — completes the dot product.
    Sum,
    /// `s = Π_i z_i` (Table II RMUL).
    Prod,
    /// `s = ‖z‖₂` — the NORM reduction used by the FR layout model.
    Norm,
    /// `s = max_i z_i`.
    Max,
    /// No reduction; the message stays a vector.
    Noop,
    /// Arbitrary user reduction.
    Custom(Arc<RopFn>),
}

impl ROp {
    /// Apply the reduction. Returns `None` for [`ROp::Noop`].
    #[inline]
    pub fn apply(&self, z: &[f32]) -> Option<f32> {
        match self {
            ROp::Sum => Some(z.iter().sum()),
            ROp::Prod => Some(z.iter().product()),
            ROp::Norm => Some(z.iter().map(|&v| v * v).sum::<f32>().sqrt()),
            ROp::Max => Some(z.iter().copied().fold(f32::NEG_INFINITY, f32::max)),
            ROp::Noop => None,
            ROp::Custom(f) => Some(f(z)),
        }
    }

    /// True when this ROP keeps the message a vector.
    pub fn is_noop(&self) -> bool {
        matches!(self, ROp::Noop)
    }
}

impl fmt::Debug for ROp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ROp::Sum => "RSUM",
            ROp::Prod => "RMUL",
            ROp::Norm => "NORM",
            ROp::Max => "RMAX",
            ROp::Noop => "NOOP",
            ROp::Custom(_) => "CUSTOM",
        })
    }
}

/// Step 3 — SOP: scale the message with a linear or nonlinear unary
/// function (Table II SIGMOID and SCAL). Applied to the reduced scalar,
/// or elementwise to the vector when ROP was a NOOP.
#[derive(Clone)]
pub enum SOp {
    /// Exact logistic sigmoid.
    Sigmoid,
    /// Table-lookup sigmoid (the Force2Vec fast path).
    SigmoidLut(Arc<SigmoidLut>),
    /// `h = α · s` (Table II SCAL).
    Scale(f32),
    /// `h = a_uv · s` — scale by the edge feature, letting weighted
    /// graphs inject `a_uv` into the message.
    ScaleByEdge,
    /// `h = max(0, s)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Student-t kernel `h = 1 / (1 + s²)` — the t-distribution
    /// similarity Force2Vec offers beside the sigmoid (applied to the
    /// NORM of the endpoint displacement).
    TDist,
    /// Identity (NOOP).
    Noop,
    /// Arbitrary user function `f(s, a_uv)`.
    Custom(Arc<SopFn>),
}

impl SOp {
    /// Apply to a scalar message.
    #[inline]
    pub fn apply_scalar(&self, s: f32, a: f32) -> f32 {
        match self {
            SOp::Sigmoid => sigmoid(s),
            SOp::SigmoidLut(lut) => lut.eval(s),
            SOp::Scale(alpha) => alpha * s,
            SOp::ScaleByEdge => a * s,
            SOp::Relu => s.max(0.0),
            SOp::Tanh => s.tanh(),
            SOp::TDist => 1.0 / (1.0 + s * s),
            SOp::Noop => s,
            SOp::Custom(f) => f(s, a),
        }
    }

    /// Apply elementwise to a vector message (in place).
    #[inline]
    pub fn apply_vec(&self, z: &mut [f32], a: f32) {
        match self {
            SOp::Noop => {}
            _ => {
                for v in z.iter_mut() {
                    *v = self.apply_scalar(*v, a);
                }
            }
        }
    }

    /// True when this SOP is the identity.
    pub fn is_noop(&self) -> bool {
        matches!(self, SOp::Noop)
    }
}

impl fmt::Debug for SOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SOp::Sigmoid => "SIGMOID",
            SOp::SigmoidLut(_) => "SIGMOID_LUT",
            SOp::Scale(_) => "SCAL",
            SOp::ScaleByEdge => "SCAL_EDGE",
            SOp::Relu => "RELU",
            SOp::Tanh => "TANH",
            SOp::TDist => "TDIST",
            SOp::Noop => "NOOP",
            SOp::Custom(_) => "CUSTOM",
        })
    }
}

/// Step 4 — MOP: combine the message with the neighbor feature vector,
/// producing the vector to accumulate (Table II MUL, SEL2ND rows).
#[derive(Clone)]
pub enum MOp {
    /// Scalar message: `w = h · y` (scale the neighbor feature — graph
    /// embedding and FR). Vector message: `w = a_uv · h` (scale the
    /// message by the edge feature — the paper's GCN row, "the message
    /// aggregation in GCN multiplies messages by edge features").
    Mul,
    /// `w = y` regardless of the message.
    Sel2nd,
    /// `w = h` (vector message passed through; scalar broadcast).
    Noop,
    /// Arbitrary user function `f(h, y, a_uv, out)`.
    Custom(Arc<MopFn>),
}

impl MOp {
    /// Apply to one edge: write the aggregation operand into `out`.
    #[inline]
    pub fn apply(&self, h: Message<'_>, y: &[f32], a: f32, out: &mut [f32]) {
        match self {
            MOp::Mul => match h {
                Message::Scalar(s) => {
                    for (o, &yi) in out.iter_mut().zip(y) {
                        *o = s * yi;
                    }
                }
                Message::Vector(hv) => {
                    for (o, &hi) in out.iter_mut().zip(hv) {
                        *o = a * hi;
                    }
                }
            },
            MOp::Sel2nd => out.copy_from_slice(y),
            MOp::Noop => match h {
                Message::Scalar(s) => out.fill(s),
                Message::Vector(hv) => out.copy_from_slice(hv),
            },
            MOp::Custom(f) => f(h, y, a, out),
        }
    }
}

impl fmt::Debug for MOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MOp::Mul => "MUL",
            MOp::Sel2nd => "SEL2ND",
            MOp::Noop => "NOOP",
            MOp::Custom(_) => "CUSTOM",
        })
    }
}

/// Step 5 — AOP: accumulate the per-edge vector into the output row
/// (Table II ASUM, AMAX rows; MIN/mean variants cover the pooling
/// options of GCN variants the paper mentions).
#[derive(Clone)]
pub enum AOp {
    /// `z ← z + w` (ASUM).
    Sum,
    /// `z ← max(z, w)` elementwise (AMAX). Identity is `-∞`, so outputs
    /// of isolated vertices are defined by [`AOp::identity`].
    Max,
    /// `z ← min(z, w)` elementwise.
    Min,
    /// Arbitrary user function.
    Custom(Arc<AopFn>),
}

impl AOp {
    /// Apply the accumulation in place.
    #[inline]
    pub fn apply(&self, z: &mut [f32], w: &[f32]) {
        match self {
            AOp::Sum => {
                for (zi, &wi) in z.iter_mut().zip(w) {
                    *zi += wi;
                }
            }
            AOp::Max => {
                for (zi, &wi) in z.iter_mut().zip(w) {
                    *zi = zi.max(wi);
                }
            }
            AOp::Min => {
                for (zi, &wi) in z.iter_mut().zip(w) {
                    *zi = zi.min(wi);
                }
            }
            AOp::Custom(f) => f(z, w),
        }
    }

    /// The identity element this accumulator's output rows must be
    /// initialized with (0 for sum, ∓∞ for max/min). Custom AOPs default
    /// to 0 and may re-initialize rows themselves. Rows of vertices with
    /// no neighbors are reset to 0 after aggregation so isolated
    /// vertices produce zero vectors (not infinities).
    pub fn identity(&self) -> f32 {
        match self {
            AOp::Sum => 0.0,
            AOp::Max => f32::NEG_INFINITY,
            AOp::Min => f32::INFINITY,
            AOp::Custom(_) => 0.0,
        }
    }
}

impl fmt::Debug for AOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AOp::Sum => "ASUM",
            AOp::Max => "AMAX",
            AOp::Min => "AMIN",
            AOp::Custom(_) => "CUSTOM",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vop_standard_ops() {
        let x = [1.0, 2.0, 3.0];
        let y = [10.0, 20.0, 30.0];
        let mut out = [0.0; 3];
        VOp::Add.apply(&x, &y, 1.0, &mut out);
        assert_eq!(out, [11.0, 22.0, 33.0]);
        VOp::Sub.apply(&x, &y, 1.0, &mut out);
        assert_eq!(out, [-9.0, -18.0, -27.0]);
        VOp::Mul.apply(&x, &y, 1.0, &mut out);
        assert_eq!(out, [10.0, 40.0, 90.0]);
        VOp::Sel1st.apply(&x, &y, 1.0, &mut out);
        assert_eq!(out, x);
        VOp::Sel2nd.apply(&x, &y, 1.0, &mut out);
        assert_eq!(out, y);
    }

    #[test]
    fn vop_custom_sees_edge_value() {
        let v = VOp::Custom(Arc::new(|x, _y, a, out| {
            for (o, &xi) in out.iter_mut().zip(x) {
                *o = a * xi;
            }
        }));
        let mut out = [0.0; 2];
        v.apply(&[1.0, 2.0], &[0.0, 0.0], 3.0, &mut out);
        assert_eq!(out, [3.0, 6.0]);
    }

    #[test]
    fn rop_reductions() {
        let z = [3.0, 4.0];
        assert_eq!(ROp::Sum.apply(&z), Some(7.0));
        assert_eq!(ROp::Prod.apply(&z), Some(12.0));
        assert_eq!(ROp::Norm.apply(&z), Some(5.0));
        assert_eq!(ROp::Max.apply(&z), Some(4.0));
        assert_eq!(ROp::Noop.apply(&z), None);
        assert!(ROp::Noop.is_noop());
        assert!(!ROp::Sum.is_noop());
    }

    #[test]
    fn sop_scalar_and_vector() {
        assert_eq!(SOp::Scale(2.0).apply_scalar(3.0, 0.0), 6.0);
        assert_eq!(SOp::ScaleByEdge.apply_scalar(3.0, 4.0), 12.0);
        assert_eq!(SOp::Relu.apply_scalar(-1.0, 0.0), 0.0);
        assert!((SOp::Sigmoid.apply_scalar(0.0, 0.0) - 0.5).abs() < 1e-7);
        let mut v = [1.0, -1.0];
        SOp::Relu.apply_vec(&mut v, 0.0);
        assert_eq!(v, [1.0, 0.0]);
        let mut w = [1.0, -1.0];
        SOp::Noop.apply_vec(&mut w, 0.0);
        assert_eq!(w, [1.0, -1.0]);
    }

    #[test]
    fn sop_lut_close_to_exact() {
        let lut = SOp::SigmoidLut(Arc::new(SigmoidLut::default_table()));
        for s in [-4.0f32, -1.0, 0.0, 0.5, 3.0] {
            assert!((lut.apply_scalar(s, 0.0) - sigmoid(s)).abs() < 1e-3);
        }
    }

    #[test]
    fn mop_scalar_scales_neighbor() {
        let y = [1.0, 2.0];
        let mut out = [0.0; 2];
        MOp::Mul.apply(Message::Scalar(3.0), &y, 1.0, &mut out);
        assert_eq!(out, [3.0, 6.0]);
    }

    #[test]
    fn mop_vector_scales_by_edge() {
        let h = [5.0, 6.0];
        let y = [1.0, 2.0];
        let mut out = [0.0; 2];
        MOp::Mul.apply(Message::Vector(&h), &y, 0.5, &mut out);
        assert_eq!(out, [2.5, 3.0]);
    }

    #[test]
    fn mop_noop_passthrough() {
        let mut out = [0.0; 2];
        MOp::Noop.apply(Message::Vector(&[7.0, 8.0]), &[0.0, 0.0], 1.0, &mut out);
        assert_eq!(out, [7.0, 8.0]);
        MOp::Noop.apply(Message::Scalar(4.0), &[0.0, 0.0], 1.0, &mut out);
        assert_eq!(out, [4.0, 4.0]);
    }

    #[test]
    fn aop_accumulators() {
        let mut z = [1.0, 5.0];
        AOp::Sum.apply(&mut z, &[2.0, 2.0]);
        assert_eq!(z, [3.0, 7.0]);
        AOp::Max.apply(&mut z, &[10.0, 0.0]);
        assert_eq!(z, [10.0, 7.0]);
        AOp::Min.apply(&mut z, &[-1.0, 100.0]);
        assert_eq!(z, [-1.0, 7.0]);
    }

    #[test]
    fn aop_identities() {
        assert_eq!(AOp::Sum.identity(), 0.0);
        assert_eq!(AOp::Max.identity(), f32::NEG_INFINITY);
        assert_eq!(AOp::Min.identity(), f32::INFINITY);
    }

    #[test]
    fn message_len() {
        assert_eq!(Message::Scalar(1.0).len(), 1);
        assert_eq!(Message::Vector(&[1.0, 2.0, 3.0]).len(), 3);
        assert!(!Message::Scalar(0.0).is_empty());
    }

    #[test]
    fn debug_names_match_table_ii() {
        assert_eq!(format!("{:?}", VOp::Mul), "MUL");
        assert_eq!(format!("{:?}", ROp::Sum), "RSUM");
        assert_eq!(format!("{:?}", SOp::Sigmoid), "SIGMOID");
        assert_eq!(format!("{:?}", MOp::Sel2nd), "SEL2ND");
        assert_eq!(format!("{:?}", AOp::Max), "AMAX");
    }
}
