//! Exact and lookup-table sigmoid.
//!
//! The sigmoid SOP dominates the scalar work of the graph-embedding
//! pattern (`h_uv = σ(x_uᵀ y_v)`). Force2Vec — the end-to-end algorithm
//! the paper trains — clamps the logit and reads a precomputed table
//! instead of calling `exp` per edge; the specialized kernels here do
//! the same.

/// The exact logistic sigmoid `1 / (1 + e^{-x})`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A clamped lookup-table sigmoid.
///
/// Logits are clamped to `[-bound, bound]` and mapped to one of
/// `resolution` precomputed values (nearest-entry lookup). With the
/// default 2048 entries over `[-8, 8]` the absolute error is below
/// `1e-3` everywhere (the sigmoid's slope is at most 1/4, and the table
/// step is 16/2048).
#[derive(Debug, Clone)]
pub struct SigmoidLut {
    table: Vec<f32>,
    bound: f32,
    inv_step: f32,
}

impl SigmoidLut {
    /// Default table: 2048 entries over `[-8, 8]`, matching the
    /// Force2Vec reference implementation's `SM_TABLE_SIZE`/`SM_BOUND`.
    pub fn default_table() -> Self {
        Self::new(8.0, 2048)
    }

    /// Build a table with `resolution` entries over `[-bound, bound]`.
    ///
    /// # Panics
    /// Panics if `bound <= 0` or `resolution < 2`.
    pub fn new(bound: f32, resolution: usize) -> Self {
        assert!(bound > 0.0, "sigmoid LUT bound must be positive");
        assert!(resolution >= 2, "sigmoid LUT needs at least 2 entries");
        let step = 2.0 * bound / (resolution - 1) as f32;
        let table = (0..resolution).map(|i| sigmoid(-bound + i as f32 * step)).collect();
        SigmoidLut { table, bound, inv_step: 1.0 / step }
    }

    /// Table lookup with clamping.
    #[inline]
    pub fn eval(&self, x: f32) -> f32 {
        let clamped = x.clamp(-self.bound, self.bound);
        let idx = ((clamped + self.bound) * self.inv_step + 0.5) as usize;
        // idx can reach table.len() due to the +0.5 rounding at the top end.
        self.table[idx.min(self.table.len() - 1)]
    }

    /// The clamping bound.
    pub fn bound(&self) -> f32 {
        self.bound
    }

    /// Number of table entries.
    pub fn resolution(&self) -> usize {
        self.table.len()
    }

    /// Maximum absolute error against the exact sigmoid, measured on a
    /// dense probe grid inside the bound. Exposed so callers (and tests)
    /// can check the accuracy/speed trade-off.
    pub fn max_error_within_bound(&self) -> f32 {
        let probes = self.table.len() * 4;
        (0..=probes)
            .map(|i| {
                let x = -self.bound + 2.0 * self.bound * i as f32 / probes as f32;
                (self.eval(x) - sigmoid(x)).abs()
            })
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sigmoid_known_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // symmetry: σ(x) + σ(-x) = 1
        for x in [-3.0f32, -0.5, 0.7, 2.2] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn lut_matches_exact_within_tolerance() {
        let lut = SigmoidLut::default_table();
        assert!(lut.max_error_within_bound() < 1e-3);
    }

    #[test]
    fn lut_clamps_outside_bound() {
        let lut = SigmoidLut::default_table();
        assert_eq!(lut.eval(100.0), lut.eval(8.0));
        assert_eq!(lut.eval(-100.0), lut.eval(-8.0));
    }

    #[test]
    fn lut_endpoints_are_exact_entries() {
        let lut = SigmoidLut::new(4.0, 256);
        assert!((lut.eval(-4.0) - sigmoid(-4.0)).abs() < 1e-6);
        assert!((lut.eval(4.0) - sigmoid(4.0)).abs() < 1e-6);
    }

    #[test]
    fn lut_is_monotone_nondecreasing() {
        let lut = SigmoidLut::default_table();
        let mut prev = -1.0f32;
        for i in 0..1000 {
            let x = -10.0 + 20.0 * i as f32 / 999.0;
            let y = lut.eval(x);
            assert!(y >= prev - 1e-7, "non-monotone at x={x}");
            prev = y;
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn lut_rejects_bad_bound() {
        let _ = SigmoidLut::new(0.0, 16);
    }

    #[test]
    fn coarse_lut_has_larger_error() {
        let coarse = SigmoidLut::new(8.0, 16);
        let fine = SigmoidLut::new(8.0, 4096);
        assert!(coarse.max_error_within_bound() > fine.max_error_within_bound());
    }
}
