//! Negative-edge sampling for embedding training.
//!
//! Force2Vec (and VERSE) train with noise-contrastive estimation: each
//! minibatch vertex attracts its true neighbors and repels `k` sampled
//! non-neighbors. The sampled pairs are assembled into a rectangular
//! `batch × n` CSR so the *same* FusedMM kernel computes the repulsive
//! term — sampling is an application-layer concern, exactly as the
//! paper's "FusedMM does not perform minibatching / sampling" division
//! of labor prescribes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_sparse::coo::{Coo, Dedup};
use fusedmm_sparse::csr::Csr;

/// Uniform negative sampler with a deterministic stream.
#[derive(Debug)]
pub struct NegativeSampler {
    nvertices: usize,
    per_vertex: usize,
    rng: StdRng,
}

impl NegativeSampler {
    /// Sample `per_vertex` negatives per batch vertex from `0..nvertices`.
    pub fn new(nvertices: usize, per_vertex: usize, seed: u64) -> Self {
        assert!(nvertices > 1, "need at least two vertices to sample negatives");
        assert!(per_vertex > 0, "need at least one negative per vertex");
        NegativeSampler { nvertices, per_vertex, rng: StdRng::seed_from_u64(seed) }
    }

    /// Build the `batch.len() × nvertices` negative-pair matrix for one
    /// minibatch: row `i` holds `per_vertex` sampled non-self targets
    /// for `batch[i]` (unit values; duplicates merged).
    pub fn sample_batch(&mut self, batch: &[usize]) -> Csr {
        let mut coo =
            Coo::with_capacity(batch.len(), self.nvertices, batch.len() * self.per_vertex);
        for (i, &u) in batch.iter().enumerate() {
            let mut placed = 0;
            while placed < self.per_vertex {
                let v = self.rng.gen_range(0..self.nvertices);
                if v == u {
                    continue;
                }
                coo.push(i, v, 1.0);
                placed += 1;
            }
        }
        coo.to_csr(Dedup::Last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_requested_count_modulo_duplicates() {
        let mut s = NegativeSampler::new(100, 5, 1);
        let m = s.sample_batch(&[3, 50, 99]);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 100);
        for r in 0..3 {
            assert!(m.row_nnz(r) <= 5);
            assert!(m.row_nnz(r) >= 1);
        }
    }

    #[test]
    fn never_samples_self() {
        let mut s = NegativeSampler::new(10, 8, 2);
        for u in 0..10 {
            let m = s.sample_batch(&[u]);
            let (cols, _) = m.row(0);
            assert!(!cols.contains(&u), "vertex {u} sampled itself");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = NegativeSampler::new(50, 3, 7);
        let mut b = NegativeSampler::new(50, 3, 7);
        assert_eq!(a.sample_batch(&[1, 2]), b.sample_batch(&[1, 2]));
    }

    #[test]
    fn stream_advances_between_batches() {
        let mut s = NegativeSampler::new(50, 3, 7);
        let m1 = s.sample_batch(&[1]);
        let m2 = s.sample_batch(&[1]);
        // Extremely unlikely to be identical if the stream advances.
        assert!(m1 != m2 || m1.nnz() < 3);
    }

    #[test]
    #[should_panic(expected = "at least one negative")]
    fn zero_negatives_rejected() {
        let _ = NegativeSampler::new(10, 0, 1);
    }
}
