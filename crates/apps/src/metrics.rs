//! Classification metrics: accuracy, F1-micro, F1-macro.
//!
//! §V-D reports F1-micro for node classification on Cora (0.78) and
//! Pubmed (0.79) and asserts fused and unfused training reach identical
//! scores. For single-label multi-class prediction F1-micro equals
//! accuracy, but we implement the full precision/recall machinery so
//! the macro variant (and future multi-label use) is available.

/// Fraction of predictions equal to the truth.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "prediction count must match truth");
    assert!(!truth.is_empty(), "cannot score an empty set");
    let correct = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// Per-class true-positive / false-positive / false-negative counts.
fn confusion(truth: &[usize], pred: &[usize], nclasses: usize) -> Vec<(usize, usize, usize)> {
    let mut counts = vec![(0usize, 0usize, 0usize); nclasses];
    for (&t, &p) in truth.iter().zip(pred) {
        assert!(t < nclasses && p < nclasses, "label out of range");
        if t == p {
            counts[t].0 += 1;
        } else {
            counts[p].1 += 1;
            counts[t].2 += 1;
        }
    }
    counts
}

/// Micro-averaged F1: global TP/FP/FN pooled across classes. For
/// single-label problems this equals accuracy.
pub fn f1_micro(truth: &[usize], pred: &[usize], nclasses: usize) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    let counts = confusion(truth, pred, nclasses);
    let (tp, fp, fne) = counts
        .iter()
        .fold((0usize, 0usize, 0usize), |acc, &(a, b, c)| (acc.0 + a, acc.1 + b, acc.2 + c));
    let denom = 2 * tp + fp + fne;
    if denom == 0 {
        0.0
    } else {
        2.0 * tp as f64 / denom as f64
    }
}

/// Macro-averaged F1: unweighted mean of per-class F1 scores (classes
/// absent from both truth and prediction contribute 0).
pub fn f1_macro(truth: &[usize], pred: &[usize], nclasses: usize) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    assert!(nclasses > 0);
    let counts = confusion(truth, pred, nclasses);
    let sum: f64 = counts
        .iter()
        .map(|&(tp, fp, fne)| {
            let denom = 2 * tp + fp + fne;
            if denom == 0 {
                0.0
            } else {
                2.0 * tp as f64 / denom as f64
            }
        })
        .sum();
    sum / nclasses as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [0, 1, 2, 1];
        assert_eq!(accuracy(&t, &t), 1.0);
        assert_eq!(f1_micro(&t, &t, 3), 1.0);
        assert_eq!(f1_macro(&t, &t, 3), 1.0);
    }

    #[test]
    fn micro_equals_accuracy_for_single_label() {
        let truth = [0, 0, 1, 1, 2, 2, 2];
        let pred = [0, 1, 1, 1, 2, 0, 2];
        assert!((f1_micro(&truth, &pred, 3) - accuracy(&truth, &pred)).abs() < 1e-12);
    }

    #[test]
    fn macro_punishes_minority_class_errors() {
        // Class 2 appears once and is always missed.
        let truth = [0, 0, 0, 0, 2];
        let pred = [0, 0, 0, 0, 0];
        let micro = f1_micro(&truth, &pred, 3);
        let mac = f1_macro(&truth, &pred, 3);
        assert!(mac < micro, "macro {mac} should be below micro {micro}");
    }

    #[test]
    fn known_hand_computed_f1() {
        // truth: [0,0,1,1], pred: [0,1,1,0]
        // class0: tp=1 fp=1 fn=1 -> f1 = 2/4 = .5 ; class1 same.
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 1, 0];
        assert!((f1_macro(&truth, &pred, 2) - 0.5).abs() < 1e-12);
        assert!((f1_micro(&truth, &pred, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn length_mismatch_panics() {
        let _ = accuracy(&[0, 1], &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let _ = f1_micro(&[0, 5], &[0, 1], 3);
    }
}
