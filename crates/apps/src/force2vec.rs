//! Force2Vec graph embedding — the end-to-end training experiment.
//!
//! Table VIII of the paper trains Force2Vec (d = 128, batch 256, 800
//! epochs) three ways: with PyTorch dense ops, with DGL's unfused
//! SDDMM+SpMM kernels, and with FusedMM — reporting per-epoch time and
//! the F1-micro of the resulting embeddings. This module implements all
//! three backends over one shared training loop so measured differences
//! come only from the kernel strategy.
//!
//! The model is sigmoid negative-sampling embedding (VERSE/Force2Vec,
//! Fig. 1b): minimize `-Σ_{(u,v)∈E} ln σ(x_u·x_v) - Σ_neg ln σ(-x_u·x_n)`.
//! The gradient with respect to a batch vertex `u` is
//!
//! ```text
//! ∂L/∂x_u = Σ_{v∈N(u)} (σ(x_u·x_v) − 1)·x_v  +  Σ_{n∈Neg(u)} σ(x_u·x_n)·x_n
//! ```
//!
//! Both terms are FusedMM operations — the positive term takes a custom
//! SOP `s ↦ σ(s) − 1` ("FusedMM can directly take a scaling operation",
//! §V-D), the negative term is the stock sigmoid-embedding pattern. The
//! unfused backend materializes per-edge dot products and sigmoids like
//! DGL; the dense backend forms full `batch × n` score matrices like an
//! eager PyTorch implementation.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_baseline::tensor::{dense_mask, OpTally, Tensor};
use fusedmm_baseline::unfused::unfused_pipeline;
use fusedmm_core::fusedmm_opt;
use fusedmm_ops::{sigmoid, AOp, MOp, OpSet, ROp, SOp, VOp};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;
use fusedmm_sparse::slice::{batches, gather_rows, slice_rows};

use crate::sampler::NegativeSampler;

/// Which kernel strategy drives training (the three rows of Table VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// FusedMM kernels (fused, no intermediates).
    Fused,
    /// DGL-equivalent unfused SDDMM → SpMM with materialized messages.
    Unfused,
    /// PyTorch-equivalent dense tensor ops with `batch × n` temporaries.
    DenseTensor,
}

/// Training hyperparameters. Defaults follow the paper's end-to-end
/// setup (d = 128, batch 256) with fewer epochs for CI-scale runs.
#[derive(Debug, Clone)]
pub struct Force2VecConfig {
    /// Embedding dimension (paper: 128).
    pub dim: usize,
    /// Minibatch size (paper: 256).
    pub batch_size: usize,
    /// Training epochs (paper: 800).
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Negative samples per batch vertex (paper's Force2Vec uses 5).
    pub negatives: usize,
    /// RNG seed for init and sampling.
    pub seed: u64,
    /// Kernel backend.
    pub backend: Backend,
}

impl Default for Force2VecConfig {
    fn default() -> Self {
        Force2VecConfig {
            dim: 128,
            batch_size: 256,
            epochs: 10,
            lr: 0.02,
            negatives: 5,
            seed: 1,
            backend: Backend::Fused,
        }
    }
}

/// Output of a training run.
#[derive(Debug)]
pub struct TrainResult {
    /// The learned `n × d` embedding matrix.
    pub embedding: Dense,
    /// Wall seconds per epoch.
    pub epoch_seconds: Vec<f64>,
    /// Mean NCE loss per epoch (monitoring only).
    pub losses: Vec<f64>,
}

/// The Force2Vec trainer.
#[derive(Debug)]
pub struct Force2Vec {
    adj: Csr,
    cfg: Force2VecConfig,
}

impl Force2Vec {
    /// Create a trainer for a (square) adjacency matrix.
    pub fn new(adj: Csr, cfg: Force2VecConfig) -> Self {
        assert_eq!(adj.nrows(), adj.ncols(), "Force2Vec expects a square adjacency matrix");
        assert!(cfg.dim > 0 && cfg.batch_size > 0 && cfg.epochs > 0);
        Force2Vec { adj, cfg }
    }

    /// The positive-term operator set: `(MUL, RSUM, σ(s)−1, MUL, ASUM)`.
    fn positive_ops() -> OpSet {
        OpSet::custom(
            VOp::Mul,
            ROp::Sum,
            SOp::Custom(Arc::new(|s, _| sigmoid(s) - 1.0)),
            MOp::Mul,
            AOp::Sum,
        )
    }

    /// The negative-term operator set: the stock sigmoid embedding.
    fn negative_ops() -> OpSet {
        OpSet::sigmoid_embedding(None)
    }

    /// Run the full training loop.
    pub fn train(&self) -> TrainResult {
        let n = self.adj.nrows();
        let cfg = &self.cfg;
        let mut emb = init_embedding(n, cfg.dim, cfg.seed);
        let mut sampler = NegativeSampler::new(n, cfg.negatives, cfg.seed ^ 0x5EED);
        let batch_list = batches(n, cfg.batch_size);
        let mut epoch_seconds = Vec::with_capacity(cfg.epochs);
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            let t0 = std::time::Instant::now();
            let loss = self.train_epoch(&mut emb, &mut sampler, &batch_list);
            epoch_seconds.push(t0.elapsed().as_secs_f64());
            losses.push(loss);
        }
        TrainResult { embedding: emb, epoch_seconds, losses }
    }

    /// One epoch over all minibatches; returns the mean loss.
    pub fn train_epoch(
        &self,
        emb: &mut Dense,
        sampler: &mut NegativeSampler,
        batch_list: &[Vec<usize>],
    ) -> f64 {
        let cfg = &self.cfg;
        let mut loss_sum = 0.0f64;
        let mut loss_terms = 0usize;
        for batch in batch_list {
            let mb = slice_rows(&self.adj, batch);
            let neg = sampler.sample_batch(batch);
            let xb = gather_rows(emb, batch);

            let (grad_pos, grad_neg) = match cfg.backend {
                Backend::Fused => (
                    fusedmm_opt(&mb.adj, &xb, emb, &Self::positive_ops()),
                    fusedmm_opt(&neg, &xb, emb, &Self::negative_ops()),
                ),
                Backend::Unfused => (
                    unfused_pipeline(&mb.adj, &xb, emb, &Self::positive_ops()).z,
                    unfused_pipeline(&neg, &xb, emb, &Self::negative_ops()).z,
                ),
                Backend::DenseTensor => (
                    dense_gradient(&mb.adj, &xb, emb, |s| sigmoid(s) - 1.0),
                    dense_gradient(&neg, &xb, emb, sigmoid),
                ),
            };

            // Monitoring loss on the positive edges of this batch.
            let (l, t) = batch_loss(&mb.adj, &xb, emb);
            loss_sum += l;
            loss_terms += t;

            // SGD step on the batch rows (rows are disjoint per batch).
            for (i, &u) in batch.iter().enumerate() {
                let gp = grad_pos.row(i);
                let gn = grad_neg.row(i);
                for ((x, &p), &q) in emb.row_mut(u).iter_mut().zip(gp).zip(gn) {
                    *x -= cfg.lr * (p + q);
                }
            }
        }
        if loss_terms == 0 {
            0.0
        } else {
            loss_sum / loss_terms as f64
        }
    }
}

/// Uniform init in `±0.5/√d`, the Force2Vec reference initialization.
fn init_embedding(n: usize, d: usize, seed: u64) -> Dense {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = 0.5 / (d as f32).sqrt();
    let mut m = Dense::zeros(n, d);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-scale..scale);
    }
    m
}

/// `-mean ln σ(x_u·x_v)` over the batch's positive edges.
fn batch_loss(mb_adj: &Csr, xb: &Dense, emb: &Dense) -> (f64, usize) {
    let mut sum = 0.0f64;
    let mut terms = 0usize;
    for i in 0..mb_adj.nrows() {
        let (cols, _) = mb_adj.row(i);
        for &v in cols {
            let s = fusedmm_core::simd::dot(xb.row(i), emb.row(v));
            sum -= (sigmoid(s).max(1e-12) as f64).ln();
            terms += 1;
        }
    }
    (sum, terms)
}

/// The PyTorch-style gradient: `(f(X_b Yᵀ) ⊙ dense(A)) × Y` with full
/// dense temporaries.
fn dense_gradient(a: &Csr, xb: &Dense, y: &Dense, f: impl Fn(f32) -> f32) -> Dense {
    let mut tally = OpTally::default();
    let xt = Tensor::new(xb.clone());
    let yt = Tensor::new(y.clone());
    let scores = xt.matmul(&yt.transpose(&mut tally), &mut tally);
    let scaled = scores.map(f, &mut tally);
    let mask = dense_mask(a, &mut tally);
    let masked = scaled.mul(&mask, &mut tally);
    masked.matmul(&yt, &mut tally).into_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_graph::planted::planted_partition;

    fn tiny_graph() -> Csr {
        planted_partition(60, 2, 6.0, 1.0, 11).adj
    }

    fn tiny_cfg(backend: Backend) -> Force2VecConfig {
        Force2VecConfig {
            dim: 16,
            batch_size: 16,
            epochs: 3,
            lr: 0.05,
            negatives: 3,
            seed: 5,
            backend,
        }
    }

    #[test]
    fn loss_decreases_with_training() {
        let f = Force2Vec::new(tiny_graph(), tiny_cfg(Backend::Fused));
        let r = f.train();
        assert_eq!(r.losses.len(), 3);
        assert!(
            r.losses.last().unwrap() < r.losses.first().unwrap(),
            "loss did not decrease: {:?}",
            r.losses
        );
    }

    #[test]
    fn all_backends_produce_identical_embeddings() {
        // Same seeds, same math -> same result up to f32 noise; this is
        // the paper's claim that FusedMM "does not alter the actual
        // computations performed".
        let fused = Force2Vec::new(tiny_graph(), tiny_cfg(Backend::Fused)).train();
        let unfused = Force2Vec::new(tiny_graph(), tiny_cfg(Backend::Unfused)).train();
        let dense = Force2Vec::new(tiny_graph(), tiny_cfg(Backend::DenseTensor)).train();
        assert!(
            fused.embedding.max_abs_diff(&unfused.embedding) < 1e-3,
            "fused vs unfused diff {}",
            fused.embedding.max_abs_diff(&unfused.embedding)
        );
        assert!(
            fused.embedding.max_abs_diff(&dense.embedding) < 1e-3,
            "fused vs dense diff {}",
            fused.embedding.max_abs_diff(&dense.embedding)
        );
    }

    #[test]
    fn embedding_separates_planted_communities() {
        let g = planted_partition(60, 2, 8.0, 0.5, 21);
        let mut cfg = tiny_cfg(Backend::Fused);
        cfg.epochs = 30;
        let r = Force2Vec::new(g.adj.clone(), cfg).train();
        // Mean intra-class dot should exceed mean inter-class dot.
        let emb = &r.embedding;
        let (mut intra, mut inter, mut ni, mut nx) = (0.0f64, 0.0f64, 0usize, 0usize);
        for u in 0..60 {
            for v in (u + 1)..60 {
                let d = fusedmm_core::simd::dot(emb.row(u), emb.row(v)) as f64;
                if g.labels[u] == g.labels[v] {
                    intra += d;
                    ni += 1;
                } else {
                    inter += d;
                    nx += 1;
                }
            }
        }
        assert!(
            intra / ni as f64 > inter / nx as f64,
            "intra {} !> inter {}",
            intra / ni as f64,
            inter / nx as f64
        );
    }

    #[test]
    fn epoch_timings_recorded() {
        let f = Force2Vec::new(tiny_graph(), tiny_cfg(Backend::Fused));
        let r = f.train();
        assert_eq!(r.epoch_seconds.len(), 3);
        assert!(r.epoch_seconds.iter().all(|&t| t > 0.0));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rectangular_adjacency_rejected() {
        let mut c = fusedmm_sparse::Coo::new(2, 3);
        c.push(0, 2, 1.0);
        let _ =
            Force2Vec::new(c.to_csr(fusedmm_sparse::coo::Dedup::Last), tiny_cfg(Backend::Fused));
    }
}
