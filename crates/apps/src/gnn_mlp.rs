//! A GNN layer with MLP messages and max pooling (Table III row 4).
//!
//! `z_u = max_{v∈N(u)} a_uv · σ(MLP([x_u; x_v]))` — the paper's example
//! of a pattern that *requires* user-defined VOPs, demonstrating that
//! FusedMM's flexibility covers message functions no fixed kernel
//! vocabulary anticipates. This runs through the generic five-step path
//! (no specialization exists, by design — the paper's library only
//! specializes the first three Table III rows).

use std::sync::Arc;

use fusedmm_core::fusedmm_generic;
use fusedmm_ops::{Mlp, OpSet};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

/// A max-pooling GNN layer with an MLP message function.
#[derive(Debug, Clone)]
pub struct GnnMlpLayer {
    mlp: Arc<Mlp>,
}

impl GnnMlpLayer {
    /// Build from an MLP mapping `[x_u; x_v] ∈ R^{2d}` to `R^d`.
    ///
    /// # Panics
    /// Panics unless `mlp.d_out() == mlp.d_in()` (the aggregated message
    /// must live in the feature space so layers stack).
    pub fn new(mlp: Arc<Mlp>) -> Self {
        assert_eq!(
            mlp.d_in(),
            mlp.d_out(),
            "GNN-MLP layer needs d_out == d_in so outputs stack as features"
        );
        GnnMlpLayer { mlp }
    }

    /// Seeded layer for feature dimension `d` with the given hidden
    /// width.
    pub fn seeded(d: usize, hidden: usize, seed: u64) -> Self {
        Self::new(Arc::new(Mlp::seeded(d, hidden, d, seed)))
    }

    /// The layer's feature dimension.
    pub fn dim(&self) -> usize {
        self.mlp.d_in()
    }

    /// One message-passing step: `Z = FusedMM(A, X, X)` with the
    /// GNN-MLP operator set.
    pub fn forward(&self, a: &Csr, x: &Dense) -> Dense {
        assert_eq!(x.ncols(), self.dim(), "feature width mismatch");
        fusedmm_generic(a, x, x, &OpSet::gnn_mlp(self.mlp.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn graph() -> Csr {
        let mut c = Coo::new(5, 5);
        c.push(0, 1, 1.0);
        c.push(0, 2, 2.0);
        c.push(1, 3, 1.0);
        c.push(4, 0, 1.0);
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn forward_shape_and_determinism() {
        let layer = GnnMlpLayer::seeded(8, 16, 3);
        let x = Dense::from_fn(5, 8, |r, k| ((r + k) as f32 * 0.1).sin());
        let z1 = layer.forward(&graph(), &x);
        let z2 = layer.forward(&graph(), &x);
        assert_eq!((z1.nrows(), z1.ncols()), (5, 8));
        assert_eq!(z1.max_abs_diff(&z2), 0.0);
    }

    #[test]
    fn outputs_bounded_by_edge_weight_times_sigmoid() {
        // messages are a_uv * σ(...) ∈ (0, a_uv); with max pooling each
        // output lane lies in [0, max a_uv].
        let layer = GnnMlpLayer::seeded(4, 8, 7);
        let x = Dense::filled(5, 4, 0.3);
        let z = layer.forward(&graph(), &x);
        for (r, row) in (0..5).map(|r| (r, z.row(r))) {
            let max_w: f32 = graph().row(r).1.iter().copied().fold(0.0, f32::max);
            for &v in row {
                assert!(v >= 0.0 && v <= max_w + 1e-6, "row {r} value {v} out of range");
            }
        }
    }

    #[test]
    fn isolated_vertex_gets_zero_row() {
        let layer = GnnMlpLayer::seeded(4, 4, 1);
        let x = Dense::filled(5, 4, 1.0);
        let z = layer.forward(&graph(), &x);
        // vertices 2 and 3 have no out-edges in `graph()`
        assert!(z.row(2).iter().all(|&v| v == 0.0));
        assert!(z.row(3).iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "d_out == d_in")]
    fn non_square_mlp_rejected() {
        let _ = GnnMlpLayer::new(Arc::new(Mlp::seeded(4, 8, 2, 1)));
    }
}
