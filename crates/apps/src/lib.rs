//! End-to-end applications built on the FusedMM kernel.
//!
//! The paper's evaluation exercises the kernel through four high-level
//! algorithms (Fig. 1 / Table III); this crate implements them as a
//! downstream user would:
//!
//! * [`force2vec`] — the Force2Vec graph-embedding trainer of the
//!   end-to-end experiment (Table VIII), with three interchangeable
//!   backends: FusedMM, unfused DGL-style kernels, and PyTorch-style
//!   dense ops;
//! * [`frlayout`] — Fruchterman–Reingold force-directed graph layout;
//! * [`gcn`] — graph convolutional network layers over the SpMM
//!   specialization, with symmetric adjacency normalization;
//! * [`gnn_mlp`] — a GNN layer with MLP messages and max pooling;
//! * [`sage`] — GraphSAGE-mean layers (mean pooling via pre-scaled ASUM);
//! * [`sampler`] — negative-edge sampling for embedding training;
//! * [`classify`] + [`metrics`] — softmax-regression node
//!   classification and the F1-micro score of §V-D.

pub mod classify;
pub mod force2vec;
pub mod frlayout;
pub mod gcn;
pub mod gnn_mlp;
pub mod metrics;
pub mod sage;
pub mod sampler;

pub use classify::SoftmaxRegression;
pub use force2vec::{Backend, Force2Vec, Force2VecConfig};
pub use frlayout::{FrLayout, FrLayoutConfig};
pub use gcn::{normalize_adjacency, GcnLayer};
pub use metrics::{accuracy, f1_macro, f1_micro};
pub use sage::{row_normalize, SageLayer};
