//! Graph convolutional network layers over the SpMM specialization.
//!
//! A GCN layer (Kipf & Welling, Fig. 1c of the paper) computes
//! `H' = act(Â H W)` where `Â = D̃^{-1/2}(A + I)D̃^{-1/2}` is the
//! renormalized adjacency. The sparse product `Â H` maps to FusedMM's
//! GCN pattern (Table III row 3: SEL2ND/NOOP/NOOP/MUL/ASUM) — the pure
//! SpMM specialization benchmarked against MKL in Table VII — and the
//! small dense `× W` runs as an ordinary matmul.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_core::fusedmm_opt;
use fusedmm_ops::OpSet;
use fusedmm_sparse::coo::{Coo, Dedup};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

/// Symmetric renormalization `D̃^{-1/2}(A + I)D̃^{-1/2}` with self loops.
///
/// # Panics
/// Panics if `a` is not square.
pub fn normalize_adjacency(a: &Csr) -> Csr {
    assert_eq!(a.nrows(), a.ncols(), "normalization needs a square adjacency");
    let n = a.nrows();
    // A + I
    let mut coo = Coo::with_capacity(n, n, a.nnz() + n);
    for (r, c, v) in a.iter() {
        coo.push(r, c, v);
    }
    for i in 0..n {
        coo.push(i, i, 1.0);
    }
    let mut m = coo.to_csr(Dedup::Sum);
    // degrees of A + I
    let deg: Vec<f32> = (0..n)
        .map(|u| {
            let (_, vals) = m.row(u);
            vals.iter().sum::<f32>()
        })
        .collect();
    // D^{-1/2} (A+I) D^{-1/2}: value(u,v) /= sqrt(deg u)·sqrt(deg v).
    let rowptr = m.rowptr().to_vec();
    let colidx = m.colidx().to_vec();
    let values = m.values_mut();
    for u in 0..n {
        let du = deg[u].sqrt();
        for e in rowptr[u]..rowptr[u + 1] {
            let dv = deg[colidx[e]].sqrt();
            values[e] /= du * dv;
        }
    }
    m
}

/// Activation applied after the layer's linear transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// no activation (output layer before softmax)
    Linear,
}

/// One GCN layer: `H' = act(Â H W + b)`.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    weight: Dense,
    bias: Vec<f32>,
    activation: Activation,
}

impl GcnLayer {
    /// Glorot-style seeded initialization of a `d_in → d_out` layer.
    pub fn new(d_in: usize, d_out: usize, activation: Activation, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (6.0f32 / (d_in + d_out) as f32).sqrt();
        let mut weight = Dense::zeros(d_in, d_out);
        for v in weight.as_mut_slice() {
            *v = rng.gen_range(-scale..scale);
        }
        GcnLayer { weight, bias: vec![0.0; d_out], activation }
    }

    /// Build from explicit parameters.
    pub fn from_parts(weight: Dense, bias: Vec<f32>, activation: Activation) -> Self {
        assert_eq!(weight.ncols(), bias.len(), "bias must match output width");
        GcnLayer { weight, bias, activation }
    }

    /// Input feature width.
    pub fn d_in(&self) -> usize {
        self.weight.nrows()
    }

    /// Output feature width.
    pub fn d_out(&self) -> usize {
        self.weight.ncols()
    }

    /// `act(Â H W + b)`. `a_norm` must be the pre-normalized adjacency
    /// (see [`normalize_adjacency`]); `h` is `n × d_in`.
    pub fn forward(&self, a_norm: &Csr, h: &Dense) -> Dense {
        assert_eq!(h.ncols(), self.d_in(), "feature width mismatch");
        // Sparse aggregation through the FusedMM GCN pattern.
        let agg = fusedmm_opt(a_norm, h, h, &OpSet::gcn());
        // Dense transform.
        let mut out = agg.matmul(&self.weight);
        for r in 0..out.nrows() {
            let row = out.row_mut(r);
            for (v, &b) in row.iter_mut().zip(&self.bias) {
                *v += b;
                if self.activation == Activation::Relu {
                    *v = v.max(0.0);
                }
            }
        }
        out
    }
}

/// A two-layer GCN for node classification:
/// `softmax-ready logits = Â·relu(Â H W₁) W₂`.
#[derive(Debug, Clone)]
pub struct Gcn2 {
    /// Hidden layer.
    pub layer1: GcnLayer,
    /// Output layer (linear).
    pub layer2: GcnLayer,
}

impl Gcn2 {
    /// Seeded two-layer network `d_in → hidden → classes`.
    pub fn new(d_in: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        Gcn2 {
            layer1: GcnLayer::new(d_in, hidden, Activation::Relu, seed),
            layer2: GcnLayer::new(hidden, classes, Activation::Linear, seed ^ 0xBEEF),
        }
    }

    /// Full forward pass producing per-vertex class logits.
    pub fn forward(&self, a_norm: &Csr, x: &Dense) -> Dense {
        let h = self.layer1.forward(a_norm, x);
        self.layer2.forward(a_norm, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        let mut c = Coo::new(4, 4);
        c.push_symmetric(0, 1, 1.0);
        c.push_symmetric(1, 2, 1.0);
        c.push_symmetric(2, 3, 1.0);
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn normalized_adjacency_has_self_loops() {
        let n = normalize_adjacency(&small());
        for i in 0..4 {
            assert!(n.get(i, i).is_some(), "missing self loop at {i}");
        }
    }

    #[test]
    fn normalization_is_symmetric_for_symmetric_input() {
        let n = normalize_adjacency(&small());
        for (r, c, v) in n.iter() {
            let back = n.get(c, r).expect("symmetric entry missing");
            assert!((back - v).abs() < 1e-6);
        }
    }

    #[test]
    fn normalized_rows_of_regular_graph_sum_to_one() {
        // A 3-regular ring: every vertex has equal degree, so each row of
        // D^{-1/2}(A+I)D^{-1/2} sums to exactly 1.
        let mut c = Coo::new(6, 6);
        for u in 0..6usize {
            c.push_symmetric(u, (u + 1) % 6, 1.0);
        }
        let n = normalize_adjacency(&c.to_csr(Dedup::Last));
        for u in 0..6 {
            let (_, vals) = n.row(u);
            let s: f32 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {u} sums to {s}");
        }
    }

    #[test]
    fn identity_weight_layer_is_pure_aggregation() {
        let a = normalize_adjacency(&small());
        let d = 3;
        let eye = Dense::from_fn(d, d, |r, c| if r == c { 1.0 } else { 0.0 });
        let layer = GcnLayer::from_parts(eye, vec![0.0; d], Activation::Linear);
        let h = Dense::from_fn(4, d, |r, c| (r * d + c) as f32);
        let out = layer.forward(&a, &h);
        let agg = fusedmm_core::fusedmm_reference(&a, &h, &h, &OpSet::gcn());
        assert!(out.max_abs_diff(&agg) < 1e-5);
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let a = normalize_adjacency(&small());
        let w = Dense::filled(2, 2, -1.0);
        let layer = GcnLayer::from_parts(w, vec![0.0; 2], Activation::Relu);
        let h = Dense::filled(4, 2, 1.0);
        let out = layer.forward(&a, &h);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn two_layer_shapes() {
        let a = normalize_adjacency(&small());
        let net = Gcn2::new(5, 8, 3, 42);
        let x = Dense::filled(4, 5, 0.1);
        let logits = net.forward(&a, &x);
        assert_eq!((logits.nrows(), logits.ncols()), (4, 3));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_feature_width_panics() {
        let a = normalize_adjacency(&small());
        let layer = GcnLayer::new(5, 2, Activation::Relu, 1);
        let h = Dense::zeros(4, 3);
        let _ = layer.forward(&a, &h);
    }
}
