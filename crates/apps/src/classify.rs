//! Softmax-regression node classification on learned embeddings.
//!
//! §V-D scores embeddings by training a classifier on them and
//! reporting F1-micro (0.78 Cora / 0.79 Pubmed for both the original
//! and the FusedMM-based Force2Vec). We use multinomial logistic
//! regression trained by full-batch gradient descent — the standard
//! embedding-evaluation protocol (the original papers use scikit-learn's
//! LogisticRegression).

use fusedmm_sparse::dense::Dense;

/// Multinomial logistic regression `p(class | x) = softmax(Wx + b)`.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    /// `classes × d` weights.
    weights: Dense,
    /// Per-class bias.
    bias: Vec<f32>,
    nclasses: usize,
}

/// Training hyperparameters for the classifier.
#[derive(Debug, Clone)]
pub struct ClassifierConfig {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization strength.
    pub l2: f32,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig { epochs: 200, lr: 0.5, l2: 1e-4 }
    }
}

impl SoftmaxRegression {
    /// Train on the rows `train_idx` of `features` with the given
    /// labels (one label per feature row, in `0..nclasses`).
    pub fn train(
        features: &Dense,
        labels: &[usize],
        train_idx: &[usize],
        nclasses: usize,
        cfg: &ClassifierConfig,
    ) -> Self {
        assert_eq!(features.nrows(), labels.len(), "one label per feature row");
        assert!(nclasses >= 2, "need at least two classes");
        assert!(!train_idx.is_empty(), "empty training set");
        let d = features.ncols();
        let mut model = SoftmaxRegression {
            weights: Dense::zeros(nclasses, d),
            bias: vec![0.0; nclasses],
            nclasses,
        };
        let m = train_idx.len() as f32;
        let mut probs = vec![0f32; nclasses];
        let mut grad_w = Dense::zeros(nclasses, d);
        let mut grad_b = vec![0f32; nclasses];
        for _ in 0..cfg.epochs {
            grad_w.fill_zero();
            grad_b.iter_mut().for_each(|g| *g = 0.0);
            for &i in train_idx {
                let x = features.row(i);
                model.predict_proba(x, &mut probs);
                for c in 0..nclasses {
                    let err = probs[c] - if labels[i] == c { 1.0 } else { 0.0 };
                    grad_b[c] += err;
                    for (g, &xv) in grad_w.row_mut(c).iter_mut().zip(x) {
                        *g += err * xv;
                    }
                }
            }
            for c in 0..nclasses {
                model.bias[c] -= cfg.lr * grad_b[c] / m;
                let wrow = model.weights.row_mut(c);
                for (w, &g) in wrow.iter_mut().zip(grad_w.row(c)) {
                    *w -= cfg.lr * (g / m + cfg.l2 * *w);
                }
            }
        }
        model
    }

    /// Class probabilities for one feature vector (written into `out`).
    pub fn predict_proba(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.nclasses);
        let mut maxv = f32::NEG_INFINITY;
        for c in 0..self.nclasses {
            let mut s = self.bias[c];
            for (&w, &xv) in self.weights.row(c).iter().zip(x) {
                s += w * xv;
            }
            out[c] = s;
            maxv = maxv.max(s);
        }
        let mut sum = 0.0;
        for v in out.iter_mut() {
            *v = (*v - maxv).exp();
            sum += *v;
        }
        for v in out.iter_mut() {
            *v /= sum;
        }
    }

    /// Most likely class for one feature vector.
    pub fn predict_one(&self, x: &[f32]) -> usize {
        let mut probs = vec![0f32; self.nclasses];
        self.predict_proba(x, &mut probs);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(c, _)| c)
            .unwrap()
    }

    /// Predictions for the rows `idx` of `features`.
    pub fn predict(&self, features: &Dense, idx: &[usize]) -> Vec<usize> {
        idx.iter().map(|&i| self.predict_one(features.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::f1_micro;

    /// Linearly separable blobs in 2D.
    fn blobs() -> (Dense, Vec<usize>) {
        let n = 60;
        let mut feats = Dense::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            let (cx, cy) = [(2.0, 0.0), (-2.0, 1.0), (0.0, -2.5)][class];
            // deterministic jitter
            let jx = ((i * 37 % 11) as f32 - 5.0) * 0.05;
            let jy = ((i * 53 % 13) as f32 - 6.0) * 0.05;
            feats.set(i, 0, cx + jx);
            feats.set(i, 1, cy + jy);
            labels.push(class);
        }
        (feats, labels)
    }

    #[test]
    fn separable_data_reaches_high_f1() {
        let (feats, labels) = blobs();
        let train: Vec<usize> = (0..60).filter(|i| i % 2 == 0).collect();
        let test: Vec<usize> = (0..60).filter(|i| i % 2 == 1).collect();
        let model =
            SoftmaxRegression::train(&feats, &labels, &train, 3, &ClassifierConfig::default());
        let pred = model.predict(&feats, &test);
        let truth: Vec<usize> = test.iter().map(|&i| labels[i]).collect();
        let f1 = f1_micro(&truth, &pred, 3);
        assert!(f1 > 0.95, "f1 = {f1}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (feats, labels) = blobs();
        let train: Vec<usize> = (0..60).collect();
        let model = SoftmaxRegression::train(
            &feats,
            &labels,
            &train,
            3,
            &ClassifierConfig { epochs: 10, lr: 0.1, l2: 0.0 },
        );
        let mut probs = vec![0f32; 3];
        model.predict_proba(feats.row(0), &mut probs);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn untrained_model_is_uniform() {
        let model =
            SoftmaxRegression { weights: Dense::zeros(4, 3), bias: vec![0.0; 4], nclasses: 4 };
        let mut probs = vec![0f32; 4];
        model.predict_proba(&[1.0, 2.0, 3.0], &mut probs);
        assert!(probs.iter().all(|&p| (p - 0.25).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "one label per feature row")]
    fn label_count_mismatch_panics() {
        let feats = Dense::zeros(3, 2);
        let _ = SoftmaxRegression::train(&feats, &[0, 1], &[0], 2, &ClassifierConfig::default());
    }
}
