//! GraphSAGE with mean aggregation over the FusedMM SpMM pattern.
//!
//! The paper notes that "different variants of GCN use different
//! pooling options such as maximum, minimum, mean, etc. All of these
//! options can be captured by MOP and AOP in FusedMM" and cites
//! GraphSAGE \[30\] among the GNNs its kernels serve. This module
//! implements the GraphSAGE-mean layer
//!
//! ```text
//! h'_u = act( W_self · x_u + W_neigh · mean_{v∈N(u)} x_v + b )
//! ```
//!
//! The mean aggregation is one FusedMM call: the GCN pattern over a
//! row-normalized adjacency (each row of `A` scaled by `1/deg(u)`), so
//! ASUM with pre-scaled edge weights *is* the mean — no separate
//! post-division pass over `Z`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_core::fusedmm_opt;
use fusedmm_ops::OpSet;
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::gcn::Activation;

/// Scale every row of `a` by `1 / row_nnz` so that ASUM aggregation
/// computes the neighborhood mean. Isolated vertices keep empty rows
/// (their mean is the zero vector, matching GraphSAGE conventions for
/// degree-0 nodes).
pub fn row_normalize(a: &Csr) -> Csr {
    let mut m = a.clone();
    for u in 0..m.nrows() {
        let deg = m.row_nnz(u);
        if deg > 0 {
            m.scale_row(u, 1.0 / deg as f32);
        }
    }
    m
}

/// One GraphSAGE-mean layer.
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// `d_in × d_out` transform of the vertex's own features.
    w_self: Dense,
    /// `d_in × d_out` transform of the aggregated neighborhood mean.
    w_neigh: Dense,
    bias: Vec<f32>,
    activation: Activation,
}

impl SageLayer {
    /// Seeded Glorot-style initialization.
    pub fn new(d_in: usize, d_out: usize, activation: Activation, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (6.0f32 / (d_in + d_out) as f32).sqrt();
        let mut init = |r: usize, c: usize| {
            let mut m = Dense::zeros(r, c);
            for v in m.as_mut_slice() {
                *v = rng.gen_range(-scale..scale);
            }
            m
        };
        let w_self = init(d_in, d_out);
        let w_neigh = init(d_in, d_out);
        SageLayer { w_self, w_neigh, bias: vec![0.0; d_out], activation }
    }

    /// Build from explicit parameters.
    pub fn from_parts(
        w_self: Dense,
        w_neigh: Dense,
        bias: Vec<f32>,
        activation: Activation,
    ) -> Self {
        assert_eq!(w_self.nrows(), w_neigh.nrows(), "input widths must agree");
        assert_eq!(w_self.ncols(), w_neigh.ncols(), "output widths must agree");
        assert_eq!(w_self.ncols(), bias.len(), "bias must match output width");
        SageLayer { w_self, w_neigh, bias, activation }
    }

    /// Input feature width.
    pub fn d_in(&self) -> usize {
        self.w_self.nrows()
    }

    /// Output feature width.
    pub fn d_out(&self) -> usize {
        self.w_self.ncols()
    }

    /// Forward pass. `a_mean` must be the row-normalized adjacency from
    /// [`row_normalize`]; `h` is `n × d_in`.
    pub fn forward(&self, a_mean: &Csr, h: &Dense) -> Dense {
        assert_eq!(h.ncols(), self.d_in(), "feature width mismatch");
        // mean_{v∈N(u)} h_v — one fused SpMM-pattern call.
        let neigh = fusedmm_opt(a_mean, h, h, &OpSet::gcn());
        // W_self·h_u + W_neigh·mean + b, then activation.
        let mut out = h.matmul(&self.w_self);
        let tn = neigh.matmul(&self.w_neigh);
        for r in 0..out.nrows() {
            let row = out.row_mut(r);
            for ((v, &t), &b) in row.iter_mut().zip(tn.row(r)).zip(&self.bias) {
                *v += t + b;
                if self.activation == Activation::Relu {
                    *v = v.max(0.0);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn path4() -> Csr {
        let mut c = Coo::new(4, 4);
        c.push_symmetric(0, 1, 1.0);
        c.push_symmetric(1, 2, 1.0);
        c.push_symmetric(2, 3, 1.0);
        c.to_csr(Dedup::Last)
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let n = row_normalize(&path4());
        for u in 0..4 {
            let (_, vals) = n.row(u);
            let s: f32 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {u} sums to {s}");
        }
    }

    #[test]
    fn row_normalize_keeps_isolated_rows_empty() {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 2.0);
        let n = row_normalize(&c.to_csr(Dedup::Last));
        assert_eq!(n.row_nnz(1), 0);
        assert_eq!(n.row_nnz(2), 0);
        // normalization divides by neighbor count, not weight sum: the
        // single weight-2 edge keeps its value (2.0 / 1 neighbor).
        assert_eq!(n.get(0, 1), Some(2.0));
    }

    #[test]
    fn mean_aggregation_is_exact() {
        // Identity W_neigh, zero W_self: output = neighborhood mean.
        let a = row_normalize(&path4());
        let d = 2;
        let eye = Dense::from_fn(d, d, |r, c| if r == c { 1.0 } else { 0.0 });
        let layer =
            SageLayer::from_parts(Dense::zeros(d, d), eye, vec![0.0; d], Activation::Linear);
        let h = Dense::from_rows(4, 2, &[0.0, 0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]).unwrap();
        let out = layer.forward(&a, &h);
        // vertex 1 neighbors {0, 2}: mean = (3, 4)
        assert_eq!(out.row(1), &[3.0, 4.0]);
        // vertex 0 neighbor {1}: mean = (2, 4)
        assert_eq!(out.row(0), &[2.0, 4.0]);
    }

    #[test]
    fn self_term_contributes() {
        let a = row_normalize(&path4());
        let d = 2;
        let eye = Dense::from_fn(d, d, |r, c| if r == c { 1.0 } else { 0.0 });
        let layer =
            SageLayer::from_parts(eye, Dense::zeros(d, d), vec![1.0; d], Activation::Linear);
        let h = Dense::filled(4, 2, 3.0);
        let out = layer.forward(&a, &h);
        assert!(out.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn relu_applies() {
        let a = row_normalize(&path4());
        let layer = SageLayer::from_parts(
            Dense::filled(2, 2, -1.0),
            Dense::zeros(2, 2),
            vec![0.0; 2],
            Activation::Relu,
        );
        let h = Dense::filled(4, 2, 1.0);
        let out = layer.forward(&a, &h);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn layers_stack() {
        let a = row_normalize(&path4());
        let l1 = SageLayer::new(6, 4, Activation::Relu, 1);
        let l2 = SageLayer::new(4, 2, Activation::Linear, 2);
        let x = Dense::from_fn(4, 6, |r, c| ((r + c) as f32 * 0.2).sin());
        let out = l2.forward(&a, &l1.forward(&a, &x));
        assert_eq!((out.nrows(), out.ncols()), (4, 2));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "output widths")]
    fn mismatched_weights_rejected() {
        let _ = SageLayer::from_parts(
            Dense::zeros(2, 3),
            Dense::zeros(2, 2),
            vec![0.0; 3],
            Activation::Linear,
        );
    }
}
