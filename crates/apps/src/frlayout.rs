//! Fruchterman–Reingold force-directed graph layout (Fig. 1a).
//!
//! Each iteration computes attractive forces along edges and repulsive
//! forces between (sampled) vertex pairs, then moves vertices along the
//! net force with a cooling temperature. Both force sums are FusedMM
//! calls — the attraction uses the FR pattern of Table III row 1, the
//! repulsion a custom operator set (inverse-square kernel) — showing how
//! an application composes the kernel without ever materializing
//! per-edge forces.
//!
//! A displacement like `Σ_v h·(x_v − x_u)` decomposes into two fused
//! calls: `Σ_v h·x_v` (MOP = MUL) and `Σ_v h` (MOP = NOOP broadcasts the
//! scalar), combined as `Σ h·x_v − x_u·Σ h`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusedmm_core::{fusedmm_generic, fusedmm_opt};
use fusedmm_ops::{AOp, MOp, OpSet, ROp, SOp, VOp};
use fusedmm_sparse::csr::Csr;
use fusedmm_sparse::dense::Dense;

use crate::sampler::NegativeSampler;

/// Layout hyperparameters.
#[derive(Debug, Clone)]
pub struct FrLayoutConfig {
    /// Layout dimensionality (2 for drawing; the kernel benchmarks use
    /// up to 512).
    pub dim: usize,
    /// Iterations of force application.
    pub iterations: usize,
    /// Initial temperature (max displacement per step).
    pub temperature: f32,
    /// Multiplicative cooling per iteration.
    pub cooling: f32,
    /// Repulsive pairs sampled per vertex per iteration.
    pub repulsive_samples: usize,
    /// RNG seed for init and sampling.
    pub seed: u64,
}

impl Default for FrLayoutConfig {
    fn default() -> Self {
        FrLayoutConfig {
            dim: 2,
            iterations: 50,
            temperature: 0.1,
            cooling: 0.95,
            repulsive_samples: 5,
            seed: 1,
        }
    }
}

/// The layout engine.
#[derive(Debug)]
pub struct FrLayout {
    adj: Csr,
    cfg: FrLayoutConfig,
}

/// Result of a layout run.
#[derive(Debug)]
pub struct LayoutResult {
    /// Final `n × dim` positions.
    pub positions: Dense,
    /// Mean displacement magnitude per iteration (monitoring; should
    /// shrink as the layout settles and the temperature cools).
    pub mean_displacement: Vec<f64>,
}

impl FrLayout {
    /// Create a layout engine for a square adjacency matrix.
    pub fn new(adj: Csr, cfg: FrLayoutConfig) -> Self {
        assert_eq!(adj.nrows(), adj.ncols(), "layout needs a square adjacency");
        assert!(cfg.dim > 0 && cfg.iterations > 0);
        FrLayout { adj, cfg }
    }

    /// Attraction operator sets: spring force `h = α·‖x_u − x_v‖` toward
    /// neighbors. The `MUL` set sums `h·x_v`, the `NOOP` set sums `h`.
    fn attract_ops(alpha: f32) -> (OpSet, OpSet) {
        let mul = OpSet::fr_model(alpha);
        let broadcast = OpSet::custom(VOp::Sub, ROp::Norm, SOp::Scale(alpha), MOp::Noop, AOp::Sum);
        (mul, broadcast)
    }

    /// Repulsion operator sets: inverse-square kernel
    /// `h = k² / (‖x_u − x_w‖² + ε)` against sampled vertices.
    fn repulse_ops(k2: f32) -> (OpSet, OpSet) {
        let sop: SOp = SOp::Custom(Arc::new(move |s, _| k2 / (s * s + 1e-3)));
        let mul = OpSet::custom(VOp::Sub, ROp::Norm, sop.clone(), MOp::Mul, AOp::Sum);
        let broadcast = OpSet::custom(VOp::Sub, ROp::Norm, sop, MOp::Noop, AOp::Sum);
        (mul, broadcast)
    }

    /// `Σ_v h·(y_v − x_u)` via the two-call decomposition.
    fn force_toward(
        a: &Csr,
        x: &Dense,
        ops_mul: &OpSet,
        ops_bcast: &OpSet,
        optimized: bool,
    ) -> Dense {
        let hy = if optimized {
            fusedmm_opt(a, x, x, ops_mul)
        } else {
            fusedmm_generic(a, x, x, ops_mul)
        };
        let hsum = fusedmm_generic(a, x, x, ops_bcast);
        let mut out = hy;
        for u in 0..a.nrows() {
            let xu: Vec<f32> = x.row(u).to_vec();
            for ((o, &h), &xv) in out.row_mut(u).iter_mut().zip(hsum.row(u)).zip(&xu) {
                *o -= h * xv;
            }
        }
        out
    }

    /// Run the layout.
    pub fn run(&self) -> LayoutResult {
        let n = self.adj.nrows();
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut pos = Dense::zeros(n, cfg.dim);
        for v in pos.as_mut_slice() {
            *v = rng.gen_range(-0.5..0.5);
        }
        // FR's natural spring length: k = sqrt(area / n).
        let k = (1.0 / n as f32).sqrt();
        let alpha = 1.0 / k; // attraction strength ‖δ‖/k
        let k2 = k * k;
        let (att_mul, att_bcast) = Self::attract_ops(alpha);
        let (rep_mul, rep_bcast) = Self::repulse_ops(k2);
        let mut sampler = NegativeSampler::new(n, cfg.repulsive_samples, cfg.seed ^ 0xFACE);
        let all: Vec<usize> = (0..n).collect();
        let mut temp = cfg.temperature;
        let mut mean_displacement = Vec::with_capacity(cfg.iterations);

        for _ in 0..cfg.iterations {
            // Attraction toward neighbors (optimized FR pattern).
            let att = Self::force_toward(&self.adj, &pos, &att_mul, &att_bcast, true);
            // Repulsion away from sampled vertices.
            let rep_graph = sampler.sample_batch(&all);
            let rep = Self::force_toward(&rep_graph, &pos, &rep_mul, &rep_bcast, false);

            let mut total_disp = 0.0f64;
            for u in 0..n {
                // net force: attraction pulls toward, repulsion pushes away.
                let mut norm2 = 0.0f32;
                let forces: Vec<f32> = att
                    .row(u)
                    .iter()
                    .zip(rep.row(u))
                    .map(|(&a, &r)| {
                        let f = a - r;
                        norm2 += f * f;
                        f
                    })
                    .collect();
                let norm = norm2.sqrt().max(1e-9);
                let step = norm.min(temp);
                total_disp += step as f64;
                for (p, f) in pos.row_mut(u).iter_mut().zip(&forces) {
                    *p += f / norm * step;
                }
            }
            mean_displacement.push(total_disp / n as f64);
            temp *= cfg.cooling;
        }
        LayoutResult { positions: pos, mean_displacement }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedmm_graph::planted::planted_partition;
    use fusedmm_sparse::coo::{Coo, Dedup};

    fn dist(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&p, &q)| ((p - q) as f64).powi(2)).sum::<f64>().sqrt()
    }

    #[test]
    fn displacement_shrinks_as_temperature_cools() {
        let g = planted_partition(40, 2, 5.0, 1.0, 3).adj;
        let cfg = FrLayoutConfig { iterations: 30, ..Default::default() };
        let r = FrLayout::new(g, cfg).run();
        let early: f64 = r.mean_displacement[..5].iter().sum();
        let late: f64 = r.mean_displacement[25..].iter().sum();
        assert!(late < early, "late {late} !< early {early}");
    }

    #[test]
    fn communities_end_up_closer_than_strangers() {
        let g = planted_partition(60, 2, 8.0, 0.5, 9);
        let cfg = FrLayoutConfig { iterations: 60, seed: 4, ..Default::default() };
        let r = FrLayout::new(g.adj.clone(), cfg).run();
        let (mut intra, mut inter, mut ni, mut nx) = (0.0f64, 0.0f64, 0usize, 0usize);
        for u in 0..60 {
            for v in (u + 1)..60 {
                let d = dist(r.positions.row(u), r.positions.row(v));
                if g.labels[u] == g.labels[v] {
                    intra += d;
                    ni += 1;
                } else {
                    inter += d;
                    nx += 1;
                }
            }
        }
        let mean_intra = intra / ni as f64;
        let mean_inter = inter / nx as f64;
        assert!(mean_intra < mean_inter, "intra {mean_intra} !< inter {mean_inter}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = planted_partition(20, 2, 4.0, 1.0, 5).adj;
        let cfg = FrLayoutConfig { iterations: 5, ..Default::default() };
        let r1 = FrLayout::new(g.clone(), cfg.clone()).run();
        let r2 = FrLayout::new(g, cfg).run();
        assert_eq!(r1.positions.max_abs_diff(&r2.positions), 0.0);
    }

    #[test]
    fn positions_stay_finite() {
        let mut c = Coo::new(3, 3);
        c.push_symmetric(0, 1, 1.0);
        let g = c.to_csr(Dedup::Last);
        let r = FrLayout::new(g, FrLayoutConfig::default()).run();
        assert!(r.positions.as_slice().iter().all(|v| v.is_finite()));
    }
}
