//! # FusedMM — unified SDDMM-SpMM kernels for graph learning
//!
//! A from-scratch Rust reproduction of *FusedMM: A Unified SDDMM-SpMM
//! Kernel for Graph Embedding and Graph Neural Networks* (Rahman,
//! Sujon & Azad, IPDPS 2021). This façade crate re-exports the
//! workspace's public API under one roof:
//!
//! * [`sparse`] — CSR/CSC/COO and dense matrix substrate;
//! * [`graph`] — graph generators and the Table V dataset registry;
//! * [`ops`] — the five-step VOP/ROP/SOP/MOP/AOP operator framework;
//! * [`kernel`] — the FusedMM kernel itself (generic, specialized, and
//!   autotuned entry points);
//! * [`baseline`] — the unfused (DGL-style), dense (PyTorch-style) and
//!   inspector-executor (MKL-style) comparators;
//! * [`apps`] — Force2Vec embedding, FR layout, GCN, GNN-MLP,
//!   classification;
//! * [`serve`] — the online serving engine: plan cache, row-subset
//!   kernels, micro-batched embedding refresh, edge scoring;
//! * [`rpc`] — multi-process shard serving: framed socket transport,
//!   worker serve loop, coordinator client, replicated epoch log;
//! * [`perf`] — timing, latency histograms, memory tracking, STREAM
//!   bandwidth, roofline, the metrics registry, and the request
//!   tracer.
//!
//! ## Quickstart
//!
//! ```
//! use fusedmm::prelude::*;
//!
//! // Generate a small power-law graph.
//! let a = rmat(&RmatConfig::new(500, 2000));
//! let x = random_features(500, 64, 0.5, 1);
//! let y = random_features(500, 64, 0.5, 2);
//!
//! // z_u = Σ_{v∈N(u)} σ(x_u·y_v) · y_v, fused and autotuned.
//! let z = fusedmm(&a, &x, &y, &OpSet::sigmoid_embedding(None));
//! assert_eq!((z.nrows(), z.ncols()), (500, 64));
//! ```

pub use fusedmm_apps as apps;
pub use fusedmm_baseline as baseline;
pub use fusedmm_core as kernel;
pub use fusedmm_graph as graph;
pub use fusedmm_ops as ops;
pub use fusedmm_perf as perf;
pub use fusedmm_rpc as rpc;
pub use fusedmm_serve as serve;
pub use fusedmm_sparse as sparse;

/// The names most programs need, in one import.
pub mod prelude {
    pub use fusedmm_core::{
        cpu_features, fusedmm, fusedmm_generic, fusedmm_opt, fusedmm_opt_with, fusedmm_reference,
        fusedmm_rows, kernel_profiles, reset_kernel_profiles, Backend, Blocking, HybridConfig,
        PartitionStrategy, Plan, PlanCache,
    };
    pub use fusedmm_graph::datasets::Dataset;
    pub use fusedmm_graph::erdos::erdos_renyi;
    pub use fusedmm_graph::features::random_features;
    pub use fusedmm_graph::planted::planted_partition;
    pub use fusedmm_graph::rmat::{rmat, RmatConfig};
    pub use fusedmm_ops::{AOp, MOp, Mlp, OpSet, Pattern, ROp, SOp, SigmoidLut, VOp};
    pub use fusedmm_rpc::{RpcConfig, RpcTransport, WorkerServer};
    pub use fusedmm_serve::remote::{
        EpochRecord, PartOutcome, PartSlot, RemoteShardedEngine, ShardTransport, WorkerEngine,
        WorkerError,
    };
    pub use fusedmm_serve::{
        quiet_injected_panics, register_kernel_profiles, wait_any, AdmissionPolicy, CacheConfig,
        CacheMetrics, EmbedOptions, EmbedResponse, Engine, EngineConfig, FaultPlan, FeatureStore,
        MetricsRegistry, MetricsSnapshot, Quality, Reordering, ServeError, ShardedEngine,
        ShardedMetrics, Ticket, Tracer,
    };
    pub use fusedmm_sparse::coo::Dedup;
    pub use fusedmm_sparse::{Coo, Csc, Csr, Dense, Permutation};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let a = erdos_renyi(64, 200, 1);
        let x = random_features(64, 16, 0.5, 1);
        let y = random_features(64, 16, 0.5, 2);
        let z = fusedmm(&a, &x, &y, &OpSet::gcn());
        let r = fusedmm_reference(&a, &x, &y, &OpSet::gcn());
        assert!(z.max_abs_diff(&r) < 1e-5);
    }
}
