//! Quickstart: one fused kernel call on a generated graph.
//!
//! Builds a small RMAT graph, runs the sigmoid graph-embedding pattern
//! (Table III row 2 of the paper) through the tuned kernel, and checks
//! the result against the unfused SDDMM→SpMM pipeline.
//!
//! Run: `cargo run --release --example quickstart`

use fusedmm::baseline::unfused::unfused_pipeline;
use fusedmm::prelude::*;

fn main() {
    // A scale-free graph: 2,000 vertices, ~16,000 directed edges.
    let a = rmat(&RmatConfig::new(2000, 8000));
    println!("graph: {} vertices, {} edges, avg degree {:.1}", a.nrows(), a.nnz(), a.avg_degree());

    // Random 64-dimensional features for every vertex.
    let d = 64;
    let x = random_features(a.nrows(), d, 0.5, 1);
    let y = random_features(a.ncols(), d, 0.5, 2);

    // The graph-embedding operator set: z_u = Σ_v σ(x_u·y_v)·y_v.
    let ops = OpSet::sigmoid_embedding(None);

    // One fused call — no intermediate edge messages are materialized.
    let t0 = std::time::Instant::now();
    let z = fusedmm(&a, &x, &y, &ops);
    println!("fused kernel:   {:>8.3} ms", t0.elapsed().as_secs_f64() * 1e3);

    // The same computation through separate SDDMM and SpMM kernels.
    let t0 = std::time::Instant::now();
    let unfused = unfused_pipeline(&a, &x, &y, &ops);
    println!("unfused (DGL-style): {:>8.3} ms", t0.elapsed().as_secs_f64() * 1e3);
    println!(
        "unfused intermediate storage: {:.1} KB (fused: none)",
        unfused.intermediate_bytes as f64 / 1e3
    );

    // Same math, same answer.
    let diff = z.max_abs_diff(&unfused.z);
    println!("max |fused - unfused| = {diff:.2e}");
    assert!(diff < 1e-4, "fused and unfused outputs diverged");
    println!("OK: fused and unfused pipelines agree.");
}
