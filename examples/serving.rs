//! Online serving: load a graph once, answer per-node traffic, publish
//! live feature updates, and shard the engine PART1D-style.
//!
//! Spins up the [`Engine`] on an RMAT graph and issues a mixed workload
//! from several client threads — per-node embedding refreshes (through
//! the micro-batcher and the row-subset kernel) interleaved with
//! candidate-edge scoring (the SDDMM-only path) — while a trainer
//! thread publishes refreshed embeddings through the epoch-versioned
//! [`FeatureStore`]. Then cuts the same graph into nnz-balanced row
//! bands with [`ShardedEngine`] and verifies the sharded results match
//! the single engine bit for bit.
//!
//! Finally, re-serves a hot-repeat workload through the epoch-aware
//! result cache (`FUSEDMM_CACHE_MB`, default 64; 0 disables) and
//! verifies cached responses stay bit-identical across publishes and
//! delta updates while the hit counters climb.
//!
//! Then drives a 4× overload of mixed-tier requests (Exact /
//! TopKNeighbors / CachedOnly, some with deadlines) against an engine
//! whose admission policy and fault plan resolve from the environment
//! (`FUSEDMM_ADMIT_INFLIGHT`, `FUSEDMM_FAULT_PLAN`) and proves every
//! ticket resolves with exactly reconciling counters — the chaos-smoke
//! CI entry point.
//!
//! Closes with the telemetry layer: one [`MetricsRegistry`] snapshot
//! enumerating every engine/shard/cache/kernel metric in the process
//! (dumped as Prometheus text via `FUSEDMM_METRICS_PROM=<path>` and
//! JSON via `FUSEDMM_METRICS_JSON=<path>`), and a fully-sampled
//! lifecycle trace of a ticketed, cache-missing, sharded request
//! (chrome://tracing JSON via `FUSEDMM_TRACE_JSON=<path>`).
//!
//! Run: `cargo run --release --example serving`
//! Scale down (e.g. CI smoke runs): `FUSEDMM_SERVE_N=2000`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fusedmm::prelude::*;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Explicitly unlimited admission and disabled fault injection, so the
/// chaos environment (`FUSEDMM_FAULT_PLAN` / `FUSEDMM_ADMIT_*`) only
/// drives the dedicated overload section at the end — the
/// bit-identity assertions above it stay deterministic.
fn steady_config() -> EngineConfig {
    EngineConfig {
        admission: Some(AdmissionPolicy::unlimited()),
        fault: Some(Arc::new(FaultPlan::disabled())),
        ..EngineConfig::default()
    }
}

fn main() {
    // Record the hardware path before anything else, so pasted output
    // always says which SIMD backend produced the numbers below.
    println!("{}", fusedmm::kernel::cpu_features());

    // The "model": a scale-free graph and trained-looking features.
    let n = env_usize("FUSEDMM_SERVE_N", 20_000);
    let d = env_usize("FUSEDMM_SERVE_D", 64);
    let clients = env_usize("FUSEDMM_SERVE_CLIENTS", 8);
    let rounds = env_usize("FUSEDMM_SERVE_ROUNDS", 50);
    let a = rmat(&RmatConfig::new(n, 8 * n));
    println!(
        "loading graph: {} vertices, {} edges, avg degree {:.1}, d={d}",
        a.nrows(),
        a.nnz(),
        a.avg_degree()
    );
    let feats = random_features(n, d, 0.5, 42);

    // One engine, loaded once: plan prepared, partitions precomputed.
    // The features become epoch 0 of the engine's FeatureStore.
    let engine = Engine::new(
        a.clone(),
        feats.clone(),
        feats.clone(),
        OpSet::sigmoid_embedding(None),
        EngineConfig { coalesce_window: Duration::from_micros(100), ..steady_config() },
    );
    println!("engine ready: plan = {:?}, backend = {}\n", engine.plan(), engine.backend());

    // A full-graph inference pass — the classic batch call, for
    // comparison with the per-request path below.
    let t0 = std::time::Instant::now();
    let z = engine.infer_full();
    println!(
        "full-graph inference: {} rows in {:.1} ms",
        z.nrows(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Mixed serving traffic with live feature updates: clients
    // alternate embedding refreshes (64-node subsets) with
    // candidate-edge scoring, while a "trainer" publishes refreshed
    // embeddings every few rounds. Each response pins one feature
    // epoch end-to-end, so traffic never observes a torn swap.
    println!("serving {clients} concurrent clients x {rounds} rounds while a trainer publishes...");
    std::thread::scope(|s| {
        // The trainer: epoch k scales the features by a tiny factor —
        // stand-in for a training loop pushing fresh embeddings.
        let store = engine.store().clone();
        let trainer_feats = feats.clone();
        s.spawn(move || {
            for k in 0..10u32 {
                std::thread::sleep(Duration::from_millis(20));
                let scale = 1.0 + k as f32 * 0.01;
                let fresh = Dense::from_fn(n, d, |r, c| trainer_feats.get(r, c) * scale);
                store.publish(fresh.clone(), fresh);
            }
        });
        for c in 0..clients {
            let engine = &engine;
            s.spawn(move || {
                for r in 0..rounds {
                    // Clients c and c+4 ask for the same subset, so
                    // concurrent batches overlap and dedup pays off.
                    let nodes: Vec<usize> =
                        (0..64).map(|i| ((c % 4) * 7919 + r * 104_729 + i * 31) % n).collect();
                    let z = engine.embed(&nodes).expect("embed");
                    assert_eq!(z.nrows(), nodes.len());

                    let pairs: Vec<(usize, usize)> =
                        nodes.iter().map(|&u| (u, (u * 13 + 1) % n)).collect();
                    let scores = engine.score_edges(&pairs).expect("score");
                    assert!(scores.iter().all(|s| s.is_finite()));
                }
            });
        }
    });

    let m = engine.metrics();
    println!("\nserving metrics after {:.2}s uptime:", m.uptime.as_secs_f64());
    println!("{m}");
    println!(
        "\ncoalescing saved {:.1}% of row computations ({} requested, {} computed)",
        100.0 * (1.0 - m.rows_computed as f64 / m.rows_requested.max(1) as f64),
        m.rows_requested,
        m.rows_computed
    );

    // Sharded serving: cut the graph into nnz-balanced PART1D bands,
    // one band engine per shard behind a scatter/gather front end —
    // bit-identical to the single engine on the same epoch.
    let shards = env_usize("FUSEDMM_SERVE_SHARDS", 4);
    println!("\nsharding the graph into {shards} nnz-balanced bands...");
    let cfg = EngineConfig { coalesce_window: Duration::from_micros(100), ..steady_config() };
    let sharded = ShardedEngine::new(
        a.clone(),
        feats.clone(),
        feats,
        OpSet::sigmoid_embedding(None),
        shards,
        cfg.clone(),
    );
    println!("band boundaries: {:?}", sharded.boundaries());
    // A baseline single engine borrowing the *same* store, so both
    // read the same feature epoch — their results must be bit-identical.
    let baseline =
        Engine::with_store(a.clone(), sharded.store().clone(), OpSet::sigmoid_embedding(None), cfg);
    let nodes: Vec<usize> = (0..256).map(|i| (i * 131) % n).collect();
    let pairs: Vec<(usize, usize)> = nodes.iter().map(|&u| (u, (u * 7 + 3) % n)).collect();
    let z = sharded.embed(&nodes).expect("sharded embed");
    let scores = sharded.score_edges(&pairs).expect("sharded score");
    assert_eq!(
        z,
        baseline.embed(&nodes).expect("baseline embed"),
        "sharded embed must be bit-identical"
    );
    assert_eq!(
        scores,
        baseline.score_edges(&pairs).expect("baseline score"),
        "sharded scores must be bit-identical"
    );
    println!("sharded results verified bit-identical to a single engine on the same store");
    let sm = sharded.metrics();
    println!("{sm}");

    // Result caching: hot repeats served from memory, publishes flush
    // lazily, delta updates invalidate only their touch set.
    let cache_mb = env_usize("FUSEDMM_CACHE_MB", 64);
    if cache_mb == 0 {
        println!("\nresult cache disabled (FUSEDMM_CACHE_MB=0)");
        return;
    }
    println!("\nserving a hot-repeat workload through the result cache ({cache_mb} MiB)...");
    let store = sharded.store().clone();
    let epoch0 = store.snapshot();
    let cached = Engine::new(
        a.clone(),
        epoch0.x().clone(),
        epoch0.y().clone(),
        OpSet::sigmoid_embedding(None),
        EngineConfig {
            coalesce_window: Duration::from_micros(100),
            cache: Some(CacheConfig::with_mb(cache_mb)),
            ..steady_config()
        },
    );
    // A skewed hot set: 90% of requests revisit the same 256 nodes.
    let hot: Vec<usize> = (0..256).map(|i| (i * 977) % n).collect();
    std::thread::scope(|s| {
        for c in 0..clients {
            let cached = &cached;
            let hot = &hot;
            s.spawn(move || {
                for r in 0..rounds {
                    let nodes: Vec<usize> = (0..64)
                        .map(|i| {
                            let k = c * 31 + r * 17 + i;
                            if k % 10 != 0 {
                                hot[k % hot.len()]
                            } else {
                                (k * 7919) % n
                            }
                        })
                        .collect();
                    let z = cached.embed(&nodes).expect("cached embed");
                    assert_eq!(z.nrows(), nodes.len());
                }
            });
        }
    });
    // Mid-stream writes: a delta patch keeps the hot set warm, a
    // publish flushes it — served rows must track both, bit-exactly.
    let probe: Vec<usize> = hot.iter().take(32).copied().collect();
    let patch_rows = [probe[0]];
    let patch = Dense::from_fn(1, d, |_, k| 0.25 + k as f32 * 0.001);
    cached.store().delta_update(&patch_rows, &patch, &patch);
    let after_delta = cached.embed(&probe).expect("probe after delta");
    let uncached_after = Engine::with_store(
        a.clone(),
        cached.store().clone(),
        OpSet::sigmoid_embedding(None),
        EngineConfig { coalesce_window: Duration::from_micros(100), ..steady_config() },
    );
    assert_eq!(
        after_delta,
        uncached_after.embed(&probe).expect("uncached probe"),
        "cached responses must stay bit-identical after a delta update"
    );
    let m = cached.cache_metrics().expect("cache enabled");
    println!("cache after hot-repeat traffic + a delta update:\n  {m}");
    assert!(m.hits > 0, "cache enabled but zero hits recorded — hot repeats were not served");
    assert!(m.inserts > 0);
    println!(
        "cache verified: {:.1}% of {} row lookups served from memory",
        m.overall_hit_ratio() * 100.0,
        m.hits + m.misses
    );

    // Non-blocking ticketed serving with miss coalescing: one thread
    // launches a deep window of `embed_begin` tickets, does other work
    // (here: nothing but issuing more), and harvests completions with
    // `wait_any` — parked until some ticket is ready, in completion
    // order, no spin. A long coalesce window holds the first batch
    // open, so later tickets asking for the same hot nodes register
    // against the in-flight rows instead of recomputing them.
    let depth = env_usize("FUSEDMM_SERVE_INFLIGHT", 256);
    println!("\nnon-blocking serving: launching a window of {depth} ticketed requests...");
    let ticketed = Engine::new(
        a.clone(),
        epoch0.x().clone(),
        epoch0.y().clone(),
        OpSet::sigmoid_embedding(None),
        EngineConfig {
            coalesce_window: Duration::from_millis(10),
            cache: Some(CacheConfig::with_mb(cache_mb)),
            ..steady_config()
        },
    );
    let requests: Vec<Vec<usize>> =
        (0..depth).map(|r| (0..16).map(|i| hot[(r * 3 + i) % hot.len()]).collect()).collect();
    let t0 = std::time::Instant::now();
    let mut open: Vec<Ticket<Dense>> =
        requests.iter().map(|nodes| ticketed.embed_begin(nodes).expect("begin")).collect();
    let mut results: Vec<Option<Dense>> = (0..depth).map(|_| None).collect();
    while let Some(i) = wait_any(&mut open) {
        results[i] = Some(open[i].poll().expect("ready after wait_any").expect("ticketed embed"));
    }
    let elapsed = t0.elapsed();
    let tm = ticketed.metrics();
    println!(
        "harvested {depth} tickets in {:.1} ms ({:.0} req/s, peak in-flight {})",
        elapsed.as_secs_f64() * 1e3,
        depth as f64 / elapsed.as_secs_f64(),
        tm.inflight_peak
    );
    let cm = tm.cache.expect("ticketed engine runs cached");
    println!(
        "coalescing: {} of {} misses rode another request's computation ({} rows dispatched)",
        cm.coalesced_misses, cm.misses, tm.rows_computed
    );
    // Ticketed responses are bit-identical to blocking serving: the
    // window was launched against one quiescent epoch, so a blocking
    // re-request must reproduce every harvested row exactly.
    for (nodes, z) in requests.iter().zip(&results) {
        assert_eq!(
            z.as_ref().expect("harvested"),
            &ticketed.embed(nodes).expect("blocking re-check"),
            "ticketed response diverged from blocking embed"
        );
    }
    assert_eq!(tm.inflight, 0, "every ticket resolved");
    if depth >= 2 {
        assert!(
            cm.coalesced_misses > 0,
            "a deep window over a hot set must coalesce concurrent misses"
        );
    }
    println!("verified: {depth} ticketed responses bit-identical to blocking embed");

    // Telemetry: one registry enumerating every engine, shard, cache,
    // and kernel-shape metric this process produced, plus a
    // fully-sampled lifecycle trace of a ticketed, cache-missing,
    // sharded request — the span tree the chrome://tracing dump shows.
    println!("\ntelemetry: metrics registry + request lifecycle trace...");
    let tracer = Tracer::new(1.0, 8192);
    let traced = ShardedEngine::new(
        a.clone(),
        epoch0.x().clone(),
        epoch0.y().clone(),
        OpSet::sigmoid_embedding(None),
        shards,
        EngineConfig {
            coalesce_window: Duration::from_micros(100),
            cache: Some(CacheConfig::with_mb(cache_mb)),
            tracer: Some(tracer.clone()),
            ..steady_config()
        },
    );
    // Cold nodes spanning every band: the request misses the cache,
    // fans out to its owning shards, and back-fills on the way out.
    let step = (n / 48).max(1);
    let cold: Vec<usize> = (0..48).map(|i| (i * step).min(n - 1)).collect();
    let ticket = traced.embed_begin(&cold).expect("traced begin");
    std::hint::black_box(ticket.wait().expect("traced harvest"));
    let spans = tracer.spans();
    let kinds: std::collections::BTreeSet<&'static str> =
        spans.iter().map(|s| s.kind.label()).collect();
    println!(
        "trace captured {} spans across stages: {}",
        spans.len(),
        kinds.iter().copied().collect::<Vec<_>>().join(", ")
    );
    for stage in ["embed", "cache_route", "enqueue", "batch", "kernel", "cache_fill", "harvest"] {
        assert!(kinds.contains(stage), "lifecycle stage {stage} missing from the trace");
    }

    // Overload & degradation: a fresh sharded engine whose admission
    // policy and fault plan resolve from the environment
    // (`FUSEDMM_ADMIT_INFLIGHT` / `FUSEDMM_ADMIT_ROWS` /
    // `FUSEDMM_FAULT_PLAN`), driven 4× past its in-flight cap with
    // mixed-tier traffic. Every ticket must resolve — harvested,
    // degraded, shed, or failed — and the counters must reconcile
    // exactly, panics and poisoned fills included.
    quiet_injected_panics();
    let policy = AdmissionPolicy::from_env();
    let chaos_depth = if policy.max_inflight > 0 { 4 * policy.max_inflight } else { 128 };
    println!(
        "\noverload & degradation: {chaos_depth} mixed-tier requests against \
         admission {policy:?}, fault plan {}...",
        if FaultPlan::from_env().is_some_and(|p| p.is_active()) { "ACTIVE" } else { "inactive" }
    );
    let chaos = ShardedEngine::new(
        a,
        epoch0.x().clone(),
        epoch0.y().clone(),
        OpSet::sigmoid_embedding(None),
        shards,
        EngineConfig {
            coalesce_window: Duration::from_micros(100),
            cache: Some(CacheConfig::with_mb(cache_mb)),
            // admission: None / fault: None -> resolve from the env.
            ..EngineConfig::default()
        },
    );
    let mut chaos_tix: Vec<Ticket<EmbedResponse>> = Vec::new();
    let (mut eager_shed, mut eager_expired) = (0u64, 0u64);
    for r in 0..chaos_depth {
        let nodes: Vec<usize> = (0..8).map(|i| (r * 977 + i * 131) % n).collect();
        let opts = match r % 4 {
            0 | 1 => EmbedOptions::default(),
            2 => EmbedOptions::with_quality(Quality::TopKNeighbors(4)),
            _ => {
                EmbedOptions::with_deadline(Instant::now() + Duration::from_millis((r % 8) as u64))
            }
        };
        match chaos.embed_begin_opts(&nodes, opts) {
            Ok(t) => chaos_tix.push(t),
            Err(ServeError::Shed { .. }) => eager_shed += 1,
            Err(ServeError::DeadlineExpired) => eager_expired += 1,
            Err(e) => panic!("unexpected eager error under overload: {e}"),
        }
    }
    // Harvest the whole window with wait_any (O(1) wakeup per
    // completion): no ticket may hang, whatever the fault plan did.
    let (mut ok_exact, mut ok_degraded, mut failed) = (0u64, 0u64, 0u64);
    while let Some(i) = wait_any(&mut chaos_tix) {
        match chaos_tix[i].poll().expect("ready after wait_any") {
            Ok(resp) if resp.any_degraded() => ok_degraded += 1,
            Ok(_) => ok_exact += 1,
            Err(ServeError::PartFailed { .. }) | Err(ServeError::DeadlineExpired) => failed += 1,
            Err(e) => panic!("unexpected harvest error under overload: {e}"),
        }
    }
    drop(chaos_tix);
    let cm = chaos.metrics();
    println!(
        "overload outcomes: {ok_exact} exact, {ok_degraded} degraded, {failed} failed, \
         {eager_shed} shed, {eager_expired} expired at admission"
    );
    println!("{cm}");
    assert_eq!(
        cm.requests_begun,
        cm.requests_harvested
            + cm.requests_degraded
            + cm.requests_shed
            + cm.requests_failed
            + cm.requests_abandoned,
        "request reconciliation must be exact under chaos"
    );
    if policy.is_limited() {
        assert!(
            cm.requests_shed + cm.requests_degraded > 0,
            "a 4x overload past the admission cap must shed or degrade"
        );
    }
    println!("overload verified: every ticket resolved, counters reconcile exactly");

    let registry = MetricsRegistry::new();
    chaos.register_metrics(&registry);
    engine.register_metrics(&registry, &[("engine", "mixed")]);
    cached.register_metrics(&registry, &[("engine", "cached")]);
    ticketed.register_metrics(&registry, &[("engine", "ticketed")]);
    traced.register_metrics(&registry);
    register_kernel_profiles(&registry);
    let snap = registry.snapshot();
    println!(
        "registry snapshot: {} samples (engines, shards, cache, kernel shapes)",
        snap.samples.len()
    );

    let dump = |var: &str, contents: String| {
        if let Ok(path) = std::env::var(var) {
            if !path.is_empty() {
                if let Some(dir) = std::path::Path::new(&path).parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir).expect("create telemetry dir");
                    }
                }
                std::fs::write(&path, contents).expect("write telemetry dump");
                println!("wrote {var} -> {path}");
            }
        }
    };
    dump("FUSEDMM_METRICS_PROM", snap.to_prometheus());
    dump("FUSEDMM_METRICS_JSON", snap.to_json());
    dump("FUSEDMM_TRACE_JSON", tracer.chrome_json());
}
