//! Online serving: load a graph once, answer per-node traffic.
//!
//! Spins up the [`Engine`] on an RMAT graph and issues a mixed workload
//! from several client threads — per-node embedding refreshes (through
//! the micro-batcher and the row-subset kernel) interleaved with
//! candidate-edge scoring (the SDDMM-only path) — then prints the
//! latency percentiles and throughput the engine recorded.
//!
//! Run: `cargo run --release --example serving`

use std::time::Duration;

use fusedmm::prelude::*;

fn main() {
    // Record the hardware path before anything else, so pasted output
    // always says which SIMD backend produced the numbers below.
    println!("{}", fusedmm::kernel::cpu_features());

    // The "model": a scale-free graph and trained-looking features.
    let n = 20_000;
    let d = 64;
    let a = rmat(&RmatConfig::new(n, 8 * n));
    println!(
        "loading graph: {} vertices, {} edges, avg degree {:.1}, d={d}",
        a.nrows(),
        a.nnz(),
        a.avg_degree()
    );
    let feats = random_features(n, d, 0.5, 42);

    // One engine, loaded once: plan prepared, partitions precomputed.
    let engine = Engine::new(
        a,
        feats.clone(),
        feats,
        OpSet::sigmoid_embedding(None),
        EngineConfig { coalesce_window: Duration::from_micros(100), ..EngineConfig::default() },
    );
    println!("engine ready: plan = {:?}, backend = {}\n", engine.plan(), engine.backend());

    // A full-graph inference pass — the classic batch call, for
    // comparison with the per-request path below.
    let t0 = std::time::Instant::now();
    let z = engine.infer_full();
    println!(
        "full-graph inference: {} rows in {:.1} ms",
        z.nrows(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Mixed serving traffic: 8 clients, each alternating embedding
    // refreshes (64-node subsets) with candidate-edge scoring.
    let clients = 8;
    let rounds = 50;
    println!("serving {clients} concurrent clients x {rounds} rounds of mixed traffic...");
    std::thread::scope(|s| {
        for c in 0..clients {
            let engine = &engine;
            s.spawn(move || {
                for r in 0..rounds {
                    // Clients c and c+4 ask for the same subset, so
                    // concurrent batches overlap and dedup pays off.
                    let nodes: Vec<usize> =
                        (0..64).map(|i| ((c % 4) * 7919 + r * 104_729 + i * 31) % n).collect();
                    let z = engine.embed(&nodes).expect("embed");
                    assert_eq!(z.nrows(), nodes.len());

                    let pairs: Vec<(usize, usize)> =
                        nodes.iter().map(|&u| (u, (u * 13 + 1) % n)).collect();
                    let scores = engine.score_edges(&pairs).expect("score");
                    assert!(scores.iter().all(|s| s.is_finite()));
                }
            });
        }
    });

    let m = engine.metrics();
    println!("\nserving metrics after {:.2}s uptime:", m.uptime.as_secs_f64());
    println!("{m}");
    println!(
        "\ncoalescing saved {:.1}% of row computations ({} requested, {} computed)",
        100.0 * (1.0 - m.rows_computed as f64 / m.rows_requested.max(1) as f64),
        m.rows_requested,
        m.rows_computed
    );
}
