//! Online serving: load a graph once, answer per-node traffic, publish
//! live feature updates, and shard the engine PART1D-style.
//!
//! Spins up the [`Engine`] on an RMAT graph and issues a mixed workload
//! from several client threads — per-node embedding refreshes (through
//! the micro-batcher and the row-subset kernel) interleaved with
//! candidate-edge scoring (the SDDMM-only path) — while a trainer
//! thread publishes refreshed embeddings through the epoch-versioned
//! [`FeatureStore`]. Then cuts the same graph into nnz-balanced row
//! bands with [`ShardedEngine`] and verifies the sharded results match
//! the single engine bit for bit.
//!
//! Run: `cargo run --release --example serving`
//! Scale down (e.g. CI smoke runs): `FUSEDMM_SERVE_N=2000`.

use std::time::Duration;

use fusedmm::prelude::*;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    // Record the hardware path before anything else, so pasted output
    // always says which SIMD backend produced the numbers below.
    println!("{}", fusedmm::kernel::cpu_features());

    // The "model": a scale-free graph and trained-looking features.
    let n = env_usize("FUSEDMM_SERVE_N", 20_000);
    let d = env_usize("FUSEDMM_SERVE_D", 64);
    let clients = env_usize("FUSEDMM_SERVE_CLIENTS", 8);
    let rounds = env_usize("FUSEDMM_SERVE_ROUNDS", 50);
    let a = rmat(&RmatConfig::new(n, 8 * n));
    println!(
        "loading graph: {} vertices, {} edges, avg degree {:.1}, d={d}",
        a.nrows(),
        a.nnz(),
        a.avg_degree()
    );
    let feats = random_features(n, d, 0.5, 42);

    // One engine, loaded once: plan prepared, partitions precomputed.
    // The features become epoch 0 of the engine's FeatureStore.
    let engine = Engine::new(
        a.clone(),
        feats.clone(),
        feats.clone(),
        OpSet::sigmoid_embedding(None),
        EngineConfig { coalesce_window: Duration::from_micros(100), ..EngineConfig::default() },
    );
    println!("engine ready: plan = {:?}, backend = {}\n", engine.plan(), engine.backend());

    // A full-graph inference pass — the classic batch call, for
    // comparison with the per-request path below.
    let t0 = std::time::Instant::now();
    let z = engine.infer_full();
    println!(
        "full-graph inference: {} rows in {:.1} ms",
        z.nrows(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Mixed serving traffic with live feature updates: clients
    // alternate embedding refreshes (64-node subsets) with
    // candidate-edge scoring, while a "trainer" publishes refreshed
    // embeddings every few rounds. Each response pins one feature
    // epoch end-to-end, so traffic never observes a torn swap.
    println!("serving {clients} concurrent clients x {rounds} rounds while a trainer publishes...");
    std::thread::scope(|s| {
        // The trainer: epoch k scales the features by a tiny factor —
        // stand-in for a training loop pushing fresh embeddings.
        let store = engine.store().clone();
        let trainer_feats = feats.clone();
        s.spawn(move || {
            for k in 0..10u32 {
                std::thread::sleep(Duration::from_millis(20));
                let scale = 1.0 + k as f32 * 0.01;
                let fresh = Dense::from_fn(n, d, |r, c| trainer_feats.get(r, c) * scale);
                store.publish(fresh.clone(), fresh);
            }
        });
        for c in 0..clients {
            let engine = &engine;
            s.spawn(move || {
                for r in 0..rounds {
                    // Clients c and c+4 ask for the same subset, so
                    // concurrent batches overlap and dedup pays off.
                    let nodes: Vec<usize> =
                        (0..64).map(|i| ((c % 4) * 7919 + r * 104_729 + i * 31) % n).collect();
                    let z = engine.embed(&nodes).expect("embed");
                    assert_eq!(z.nrows(), nodes.len());

                    let pairs: Vec<(usize, usize)> =
                        nodes.iter().map(|&u| (u, (u * 13 + 1) % n)).collect();
                    let scores = engine.score_edges(&pairs).expect("score");
                    assert!(scores.iter().all(|s| s.is_finite()));
                }
            });
        }
    });

    let m = engine.metrics();
    println!("\nserving metrics after {:.2}s uptime:", m.uptime.as_secs_f64());
    println!("{m}");
    println!(
        "\ncoalescing saved {:.1}% of row computations ({} requested, {} computed)",
        100.0 * (1.0 - m.rows_computed as f64 / m.rows_requested.max(1) as f64),
        m.rows_requested,
        m.rows_computed
    );

    // Sharded serving: cut the graph into nnz-balanced PART1D bands,
    // one band engine per shard behind a scatter/gather front end —
    // bit-identical to the single engine on the same epoch.
    let shards = env_usize("FUSEDMM_SERVE_SHARDS", 4);
    println!("\nsharding the graph into {shards} nnz-balanced bands...");
    let cfg =
        EngineConfig { coalesce_window: Duration::from_micros(100), ..EngineConfig::default() };
    let sharded = ShardedEngine::new(
        a.clone(),
        feats.clone(),
        feats,
        OpSet::sigmoid_embedding(None),
        shards,
        cfg.clone(),
    );
    println!("band boundaries: {:?}", sharded.boundaries());
    // A baseline single engine borrowing the *same* store, so both
    // read the same feature epoch — their results must be bit-identical.
    let baseline =
        Engine::with_store(a, sharded.store().clone(), OpSet::sigmoid_embedding(None), cfg);
    let nodes: Vec<usize> = (0..256).map(|i| (i * 131) % n).collect();
    let pairs: Vec<(usize, usize)> = nodes.iter().map(|&u| (u, (u * 7 + 3) % n)).collect();
    let z = sharded.embed(&nodes).expect("sharded embed");
    let scores = sharded.score_edges(&pairs).expect("sharded score");
    assert_eq!(
        z,
        baseline.embed(&nodes).expect("baseline embed"),
        "sharded embed must be bit-identical"
    );
    assert_eq!(
        scores,
        baseline.score_edges(&pairs).expect("baseline score"),
        "sharded scores must be bit-identical"
    );
    println!("sharded results verified bit-identical to a single engine on the same store");
    let sm = sharded.metrics();
    println!("{sm}");
}
