//! Force-directed graph layout with the FR model (paper Fig. 1a).
//!
//! Lays out a two-community graph in 2D using fused force kernels and
//! prints a coarse ASCII rendering — communities should appear as two
//! separated clusters.
//!
//! Run: `cargo run --release --example graph_layout`

use fusedmm::apps::frlayout::{FrLayout, FrLayoutConfig};
use fusedmm::prelude::*;

fn main() {
    let g = planted_partition(80, 2, 8.0, 0.5, 42);
    println!("graph: {} vertices, {} edges, 2 planted communities", g.adj.nrows(), g.adj.nnz());

    let cfg = FrLayoutConfig {
        dim: 2,
        iterations: 80,
        temperature: 0.1,
        cooling: 0.95,
        repulsive_samples: 8,
        seed: 3,
    };
    let result = FrLayout::new(g.adj.clone(), cfg).run();
    println!(
        "mean displacement: {:.4} (iter 1) -> {:.4} (final; should settle)",
        result.mean_displacement.first().unwrap(),
        result.mean_displacement.last().unwrap()
    );

    // ASCII render: 'o' = community 0, 'x' = community 1.
    const W: usize = 64;
    const H: usize = 24;
    let pos = &result.positions;
    let (mut minx, mut maxx, mut miny, mut maxy) = (f32::MAX, f32::MIN, f32::MAX, f32::MIN);
    for u in 0..pos.nrows() {
        minx = minx.min(pos.get(u, 0));
        maxx = maxx.max(pos.get(u, 0));
        miny = miny.min(pos.get(u, 1));
        maxy = maxy.max(pos.get(u, 1));
    }
    let mut canvas = vec![vec![' '; W]; H];
    for u in 0..pos.nrows() {
        let cx = ((pos.get(u, 0) - minx) / (maxx - minx).max(1e-6) * (W - 1) as f32) as usize;
        let cy = ((pos.get(u, 1) - miny) / (maxy - miny).max(1e-6) * (H - 1) as f32) as usize;
        canvas[cy][cx] = if g.labels[u] == 0 { 'o' } else { 'x' };
    }
    for row in canvas {
        println!("{}", row.into_iter().collect::<String>());
    }

    // Quantify separation.
    let (mut intra, mut inter, mut ni, mut nx) = (0.0f64, 0.0f64, 0usize, 0usize);
    for u in 0..80 {
        for v in (u + 1)..80 {
            let dx = (pos.get(u, 0) - pos.get(v, 0)) as f64;
            let dy = (pos.get(u, 1) - pos.get(v, 1)) as f64;
            let d = (dx * dx + dy * dy).sqrt();
            if g.labels[u] == g.labels[v] {
                intra += d;
                ni += 1;
            } else {
                inter += d;
                nx += 1;
            }
        }
    }
    println!(
        "\nmean intra-community distance {:.3} vs inter {:.3}",
        intra / ni as f64,
        inter / nx as f64
    );
}
