//! User-defined operations: the flexibility half of the paper's pitch.
//!
//! FusedMM's five steps accept arbitrary user functions (the C library
//! takes function pointers; here, closures). This example builds two
//! operator sets no library ships out of the box and runs both through
//! the same kernel:
//!
//! 1. a *t-distribution* similarity kernel (the Force2Vec t-variant:
//!    `h = 1 / (1 + ‖x_u − y_v‖²)`) with sum aggregation;
//! 2. a *min-pooled absolute difference* kernel, mixing a custom VOP
//!    with AMIN aggregation.
//!
//! Run: `cargo run --release --example custom_ops`

use std::sync::Arc;

use fusedmm::prelude::*;

fn main() {
    let a = rmat(&RmatConfig::new(300, 1500));
    let d = 32;
    let x = random_features(300, d, 0.5, 1);
    let y = random_features(300, d, 0.5, 2);

    // --- 1. t-distribution kernel -----------------------------------------
    // VOP = SUB, ROP = NORM, SOP(s) = 1/(1+s^2), MOP = MUL, AOP = ASUM.
    let tdist = OpSet::custom(
        VOp::Sub,
        ROp::Norm,
        SOp::Custom(Arc::new(|s, _| 1.0 / (1.0 + s * s))),
        MOp::Mul,
        AOp::Sum,
    );
    let z = fusedmm(&a, &x, &y, &tdist);
    println!("t-distribution kernel: z is {}x{}", z.nrows(), z.ncols());

    // Spot-check one vertex against a scalar computation.
    let u = 7;
    let (cols, _) = a.row(u);
    if let Some(&v) = cols.first() {
        let sq: f32 = x.row(u).iter().zip(y.row(v)).map(|(&p, &q)| (p - q) * (p - q)).sum();
        let h = 1.0 / (1.0 + sq);
        println!("  edge ({u},{v}): h = 1/(1+dist^2) = {h:.4}");
    }

    // --- 2. min-pooled absolute difference --------------------------------
    // VOP = |x - y| elementwise (custom), no reduction, AMIN pooling:
    // z_u[k] = min over neighbors of |x_u[k] - y_v[k]|.
    let absdiff_min = OpSet::custom(
        VOp::Custom(Arc::new(|xr, yr, _a, out| {
            for ((o, &xi), &yi) in out.iter_mut().zip(xr).zip(yr) {
                *o = (xi - yi).abs();
            }
        })),
        ROp::Noop,
        SOp::Noop,
        MOp::Noop,
        AOp::Min,
    );
    let zmin = fusedmm(&a, &x, &y, &absdiff_min);
    println!("min-absdiff kernel:    z is {}x{}", zmin.nrows(), zmin.ncols());

    // Verify against a straightforward reference for one vertex.
    let (cols, _) = a.row(u);
    if !cols.is_empty() {
        for k in 0..3 {
            let want = cols
                .iter()
                .map(|&v| (x.get(u, k) - y.get(v, k)).abs())
                .fold(f32::INFINITY, f32::min);
            let got = zmin.get(u, k);
            assert!((want - got).abs() < 1e-6, "lane {k}: {got} vs {want}");
        }
        println!("  vertex {u}: min-pooled lanes verified against scalar reference");
    }

    // Both custom sets run through the same generic fused path — no
    // kernel code was written for either.
    println!("OK: two novel operator sets executed by one kernel.");
}
