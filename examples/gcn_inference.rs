//! GCN forward pass over the SpMM specialization (paper Fig. 1c).
//!
//! Builds a two-layer GCN, normalizes the adjacency matrix, and runs
//! inference on a planted-partition graph — then shows that even an
//! *untrained* GCN's aggregated features separate communities better
//! than raw features, because aggregation smooths over homophilous
//! neighborhoods.
//!
//! Run: `cargo run --release --example gcn_inference`

use fusedmm::apps::gcn::{normalize_adjacency, Gcn2};
use fusedmm::prelude::*;

/// Mean intra-class minus inter-class cosine similarity of rows.
fn separation(features: &Dense, labels: &[usize]) -> f64 {
    let n = features.nrows();
    let norm = |r: &[f32]| r.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt().max(1e-12);
    let (mut intra, mut inter, mut ni, mut nx) = (0.0f64, 0.0f64, 0usize, 0usize);
    for u in 0..n {
        for v in (u + 1)..n {
            let dot: f64 = features
                .row(u)
                .iter()
                .zip(features.row(v))
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            let cos = dot / (norm(features.row(u)) * norm(features.row(v)));
            if labels[u] == labels[v] {
                intra += cos;
                ni += 1;
            } else {
                inter += cos;
                nx += 1;
            }
        }
    }
    intra / ni as f64 - inter / nx as f64
}

fn main() {
    let g = planted_partition(150, 3, 10.0, 1.0, 8);
    println!("graph: {} vertices, {} edges, 3 communities", g.adj.nrows(), g.adj.nnz());

    // Â = D^{-1/2}(A + I)D^{-1/2}
    let a_norm = normalize_adjacency(&g.adj);
    println!("normalized adjacency: {} nonzeros (self loops added)", a_norm.nnz());

    // Random input features; 2-layer GCN 32 -> 16 -> 3.
    let x = random_features(g.adj.nrows(), 32, 0.5, 5);
    let net = Gcn2::new(32, 16, 3, 99);
    let t0 = std::time::Instant::now();
    let logits = net.forward(&a_norm, &x);
    println!(
        "forward pass: {:.3} ms, logits shape {}x{}",
        t0.elapsed().as_secs_f64() * 1e3,
        logits.nrows(),
        logits.ncols()
    );

    // Aggregation-induced separation (no training needed to see it).
    let hidden = net.layer1.forward(&a_norm, &x);
    let raw = separation(&x, &g.labels);
    let agg = separation(&hidden, &g.labels);
    println!("community separation (cosine): raw features {raw:.4}, after GCN layer {agg:.4}");
    assert!(agg > raw, "aggregation should increase class separation on a homophilous graph");
    println!("OK: neighborhood aggregation sharpens community structure.");
}
