//! End-to-end graph embedding: train Force2Vec on a citation-style
//! graph and evaluate node-classification F1 — the paper's §V-D
//! workflow (Table VIII + accuracy) in one program.
//!
//! Run: `cargo run --release --example embedding_training`

use fusedmm::apps::classify::{ClassifierConfig, SoftmaxRegression};
use fusedmm::apps::force2vec::{Backend, Force2Vec, Force2VecConfig};
use fusedmm::apps::metrics::f1_micro;
use fusedmm::prelude::*;

fn main() {
    // A Cora-like stand-in: 7 planted communities, strong homophily.
    let g = Dataset::Cora.labeled_standin(0.5).expect("Cora has labels");
    println!("graph: {} vertices, {} edges, {} classes", g.adj.nrows(), g.adj.nnz(), g.k);

    let cfg = Force2VecConfig {
        dim: 64,
        batch_size: 256,
        epochs: 40,
        lr: 0.02,
        negatives: 5,
        seed: 7,
        backend: Backend::Fused,
    };
    println!("training Force2Vec (FusedMM backend), d={}, {} epochs...", cfg.dim, cfg.epochs);
    let result = Force2Vec::new(g.adj.clone(), cfg).train();
    let avg_epoch = result.epoch_seconds.iter().sum::<f64>() / result.epoch_seconds.len() as f64;
    println!(
        "loss: {:.4} -> {:.4}, {:.1} ms/epoch",
        result.losses.first().unwrap(),
        result.losses.last().unwrap(),
        avg_epoch * 1e3
    );

    // Evaluate with logistic regression on a 50/50 split.
    let (train, test) = g.train_test_split(0.5, 13);
    let model = SoftmaxRegression::train(
        &result.embedding,
        &g.labels,
        &train,
        g.k,
        &ClassifierConfig::default(),
    );
    let pred = model.predict(&result.embedding, &test);
    let truth: Vec<usize> = test.iter().map(|&v| g.labels[v]).collect();
    let f1 = f1_micro(&truth, &pred, g.k);
    println!("node classification F1-micro: {f1:.3} (paper reports 0.78 on real Cora)");
    assert!(f1 > 0.5, "embedding failed to capture community structure");
}
